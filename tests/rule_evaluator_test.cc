// The compiled hot-path evaluator must decide exactly like the scalar
// MatchRule::Matches on every rule shape the generators produce: single
// dense leaf (cosine), single token leaf (Jaccard), and the multimodal OR
// of both. The FeatureCache it runs on must mirror the dataset.

#include "distance/rule_evaluator.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/cora_like.h"
#include "datagen/multimodal.h"
#include "datagen/popular_images.h"
#include "distance/cosine.h"
#include "distance/feature_cache.h"
#include "test_util.h"
#include "util/rng.h"

namespace adalsh {
namespace {

void ExpectAgreesOnRandomPairs(const GeneratedDataset& workload,
                               const char* name, int trials) {
  FeatureCache cache(workload.dataset);
  RuleEvaluator evaluator(workload.rule, cache);
  const size_t n = workload.dataset.num_records();
  Rng rng(DeriveSeed(7, 0xe7a1));
  for (int t = 0; t < trials; ++t) {
    RecordId a = static_cast<RecordId>(rng.NextBelow(n));
    RecordId b = static_cast<RecordId>(rng.NextBelow(n));
    EXPECT_EQ(evaluator.Matches(a, b),
              workload.rule.Matches(workload.dataset.record(a),
                                    workload.dataset.record(b)))
        << name << ": records " << a << ", " << b;
  }
}

TEST(RuleEvaluatorTest, AgreesOnDenseCosineLeaf) {
  PopularImagesConfig config;
  config.num_entities = 20;
  config.num_records = 150;
  config.seed = 5;
  ExpectAgreesOnRandomPairs(GeneratePopularImages(config), "popular-images",
                            1000);
}

TEST(RuleEvaluatorTest, AgreesOnTokenJaccardLeaf) {
  CoraLikeConfig config;
  config.num_entities = 25;
  config.num_records = 150;
  config.seed = 5;
  ExpectAgreesOnRandomPairs(GenerateCoraLike(config), "cora-like", 1000);
}

TEST(RuleEvaluatorTest, AgreesOnMultimodalOrRule) {
  MultiModalConfig config;
  config.num_entities = 20;
  config.num_records = 150;
  config.seed = 5;
  ExpectAgreesOnRandomPairs(GenerateMultiModal(config), "multimodal", 1000);
}

TEST(RuleEvaluatorTest, AgreesOnPlantedTokens) {
  GeneratedDataset workload = test::MakePlantedDataset({12, 9, 6, 1, 1}, 17);
  ExpectAgreesOnRandomPairs(workload, "planted", 500);
}

TEST(FeatureCacheTest, MirrorsDatasetSchemaAndNorms) {
  MultiModalConfig config;
  config.num_entities = 8;
  config.num_records = 40;
  config.seed = 11;
  GeneratedDataset workload = GenerateMultiModal(config);
  FeatureCache cache(workload.dataset);

  const Record& prototype = workload.dataset.record(0);
  ASSERT_EQ(cache.num_fields(), prototype.num_fields());
  ASSERT_EQ(cache.num_records(), workload.dataset.num_records());
  for (FieldId f = 0; f < cache.num_fields(); ++f) {
    EXPECT_EQ(cache.is_dense(f), prototype.field(f).is_dense());
  }
  for (RecordId r = 0; r < cache.num_records(); ++r) {
    const Record& record = workload.dataset.record(r);
    for (FieldId f = 0; f < cache.num_fields(); ++f) {
      const Field& field = record.field(f);
      if (cache.is_dense(f)) {
        ASSERT_EQ(cache.dim(f), field.size());
        // Dense rows are copies in the SoA arena: same values, 64-byte
        // aligned, zero-padded up to the SIMD stride (docs/simd.md).
        const float* row = cache.dense(r, f);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(row) % kSimdAlign, 0u);
        for (size_t d = 0; d < cache.dim(f); ++d) {
          EXPECT_EQ(row[d], field.dense()[d]) << "r=" << r << " d=" << d;
        }
        for (size_t d = cache.dim(f); d < PadFloats(cache.dim(f)); ++d) {
          EXPECT_EQ(row[d], 0.0f) << "padding lane r=" << r << " d=" << d;
        }
        EXPECT_DOUBLE_EQ(cache.norm(r, f),
                         L2Norm(field.dense().data(), field.size()));
      } else {
        EXPECT_EQ(&cache.tokens(r, f), &field.tokens());
      }
    }
  }
}

}  // namespace
}  // namespace adalsh
