#include "util/timer.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1e-9;
  double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1e3 * 0.5);  // coarse: both sampled closely
}

}  // namespace
}  // namespace adalsh
