#include "util/timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace adalsh {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1e-9;
  double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1e-9;
  double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1e3 * 0.5);  // coarse: both sampled closely
}

TEST(TimerTest, ThreadCpuSecondsAdvancesUnderWork) {
  double before = Timer::ThreadCpuSeconds();
  EXPECT_GE(before, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 5000000; ++i) sink = sink + 1e-9;
  double after = Timer::ThreadCpuSeconds();
  // Monotone on this thread; strictly positive progress is not guaranteed on
  // platforms where the clock is unavailable (the fallback returns 0).
  EXPECT_GE(after, before);
}

TEST(TimerTest, ThreadCpuTracksOnlyThisThread) {
  // A busy-spinning sibling thread must not inflate this thread's CPU clock:
  // the calling thread sleeps, so its own CPU delta stays far below the wall
  // time the sibling burned.
  // (The unsupported-clock fallback returns a constant 0, which also
  // satisfies the bound.)
  double cpu_before = Timer::ThreadCpuSeconds();
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    volatile double sink = 0.0;
    while (!stop.load(std::memory_order_relaxed)) sink = sink + 1e-9;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  double cpu_delta = Timer::ThreadCpuSeconds() - cpu_before;
  EXPECT_LT(cpu_delta, 0.045);  // slept through most of the 50ms window
}

}  // namespace
}  // namespace adalsh
