#include "image/image.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ImageTest, StartsBlack) {
  Image image(4, 3);
  EXPECT_EQ(image.width(), 4);
  EXPECT_EQ(image.height(), 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      for (int c = 0; c < 3; ++c) EXPECT_EQ(image.at(x, y, c), 0);
    }
  }
}

TEST(ImageTest, SetAndGet) {
  Image image(2, 2);
  image.set(1, 0, 10, 20, 30);
  EXPECT_EQ(image.at(1, 0, 0), 10);
  EXPECT_EQ(image.at(1, 0, 1), 20);
  EXPECT_EQ(image.at(1, 0, 2), 30);
  EXPECT_EQ(image.at(0, 0, 0), 0);
}

TEST(ImageTest, PixelBufferLayout) {
  Image image(2, 1);
  image.set(0, 0, 1, 2, 3);
  image.set(1, 0, 4, 5, 6);
  EXPECT_EQ(image.pixels(),
            (std::vector<uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST(ImageDeathTest, OutOfBoundsAborts) {
  Image image(2, 2);
  EXPECT_DEATH(image.at(2, 0, 0), "");
  EXPECT_DEATH(image.at(0, 0, 3), "");
}

TEST(GenerateRandomImageTest, DeterministicPerSeed) {
  ImagePatternConfig config;
  config.width = 16;
  config.height = 16;
  Rng rng_a(7), rng_b(7);
  Image a = GenerateRandomImage(config, &rng_a);
  Image b = GenerateRandomImage(config, &rng_b);
  EXPECT_EQ(a.pixels(), b.pixels());
}

TEST(GenerateRandomImageTest, DifferentSeedsDiffer) {
  ImagePatternConfig config;
  config.width = 16;
  config.height = 16;
  Rng rng_a(7), rng_b(8);
  Image a = GenerateRandomImage(config, &rng_a);
  Image b = GenerateRandomImage(config, &rng_b);
  EXPECT_NE(a.pixels(), b.pixels());
}

TEST(GenerateRandomImageTest, NotUniform) {
  ImagePatternConfig config;
  Rng rng(11);
  Image image = GenerateRandomImage(config, &rng);
  // At least two distinct pixel values must appear.
  bool found_diff = false;
  const std::vector<uint8_t>& pixels = image.pixels();
  for (size_t i = 3; i < pixels.size() && !found_diff; i += 3) {
    found_diff = pixels[i] != pixels[0] || pixels[i + 1] != pixels[1];
  }
  EXPECT_TRUE(found_diff);
}

}  // namespace
}  // namespace adalsh
