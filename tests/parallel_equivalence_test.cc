// Property-style certification of the threading model's hard requirement
// (docs/threading.md): for any dataset and seed, running the filtering
// methods with any thread count produces *bit-identical* FilterOutput —
// identical clusters in identical order, identical ranks, identical hash and
// pairwise counts — to the strictly serial path. The serial implementation is
// the oracle; the whole pre-existing test suite therefore keeps validating
// the parallel engine.

#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/hash_engine.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "datagen/cora_like.h"
#include "datagen/generated_dataset.h"
#include "datagen/multimodal.h"
#include "datagen/spotsigs_like.h"
#include "lsh/composite_scheme.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace adalsh {
namespace {

/// The thread counts every scenario is checked at; 1 is the serial oracle.
const int kThreadCounts[] = {1, 2, 8};

/// Everything in FilterOutput that is defined to be deterministic. Timing
/// (filtering_seconds) and timing-derived modeled_cost are excluded; with an
/// injected cost model, modeled_cost is compared too.
struct ComparableOutput {
  std::vector<std::vector<RecordId>> clusters;
  size_t rounds;
  uint64_t pairwise_similarities;
  uint64_t hashes_computed;
  std::vector<size_t> records_last_hashed_at;
  size_t records_finished_by_pairwise;

  bool operator==(const ComparableOutput&) const = default;
};

ComparableOutput Comparable(const FilterOutput& output) {
  return ComparableOutput{output.clusters.clusters,
                          output.stats.rounds,
                          output.stats.pairwise_similarities,
                          output.stats.hashes_computed,
                          output.stats.records_last_hashed_at,
                          output.stats.records_finished_by_pairwise};
}

/// A fixed cost model so jump-to-P decisions do not depend on wall-clock
/// calibration noise (the only nondeterministic input to Algorithm 1). The
/// ratio is representative: one rule evaluation ~ 100 raw hashes.
CostModel FixedCostModel() { return CostModel(1e-8, 1e-6); }

/// A cost model with hashing four orders of magnitude more expensive than a
/// rule evaluation: Algorithm 1 jumps to P almost immediately, so nearly all
/// clustering flows through the parallel pairwise engine (the workload the
/// tiled sweep must keep deterministic).
CostModel PairwiseHeavyCostModel() { return CostModel(1e-5, 1e-9); }

GeneratedDataset SmallCoraLike(uint64_t seed) {
  CoraLikeConfig config;
  config.num_entities = 25;
  config.num_records = 160;
  config.vocabulary_size = 800;
  config.seed = seed;
  return GenerateCoraLike(config);
}

GeneratedDataset SmallSpotSigsLike(uint64_t seed) {
  SpotSigsLikeConfig config;
  config.num_story_entities = 12;
  config.records_in_stories = 90;
  config.num_singletons = 40;
  config.sentences_min = 8;
  config.sentences_max = 16;
  config.vocabulary_size = 1200;
  config.num_sites = 6;
  config.seed = seed;
  return GenerateSpotSigsLike(config);
}

void ExpectAdaptiveLshInvariantToThreads(const GeneratedDataset& generated,
                                         uint64_t seed, int k,
                                         const char* dataset_name,
                                         CostModel cost_model =
                                             FixedCostModel()) {
  // These datasets are a few hundred records — real runs would sweep them
  // serially; force the tiled path so the property actually exercises it.
  test::ScopedParallelCutoff force_tiled(1);
  ComparableOutput reference;
  for (int threads : kThreadCounts) {
    AdaptiveLshConfig config;
    config.sequence.max_budget = 320;
    config.calibration_samples = 5;
    config.seed = seed;
    config.threads = threads;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    adalsh.set_cost_model(cost_model);
    ComparableOutput output = Comparable(adalsh.Run(k));
    if (threads == 1) {
      reference = output;
      // Sanity: the serial oracle did real work.
      ASSERT_GT(reference.hashes_computed, 0u);
      ASSERT_FALSE(reference.clusters.empty());
    } else {
      EXPECT_EQ(output, reference)
          << dataset_name << " seed " << seed << ": adaLSH with " << threads
          << " threads diverged from the serial run";
    }
  }
}

void ExpectLshBlockingInvariantToThreads(const GeneratedDataset& generated,
                                         uint64_t seed, int k,
                                         const char* dataset_name) {
  test::ScopedParallelCutoff force_tiled(1);
  ComparableOutput reference;
  for (int threads : kThreadCounts) {
    LshBlockingConfig config;
    config.num_hashes = 256;
    config.seed = seed;
    config.threads = threads;
    LshBlocking blocking(generated.dataset, generated.rule, config);
    ComparableOutput output = Comparable(blocking.Run(k));
    if (threads == 1) {
      reference = output;
      ASSERT_GT(reference.hashes_computed, 0u);
    } else {
      EXPECT_EQ(output, reference)
          << dataset_name << " seed " << seed << ": LSH-X with " << threads
          << " threads diverged from the serial run";
    }
  }
}

void ExpectPairsBaselineInvariantToThreads(const GeneratedDataset& generated,
                                           uint64_t seed, int k,
                                           const char* dataset_name) {
  test::ScopedParallelCutoff force_tiled(1);
  ComparableOutput reference;
  for (int threads : kThreadCounts) {
    PairsBaseline pairs(generated.dataset, generated.rule, threads);
    ComparableOutput output = Comparable(pairs.Run(k));
    if (threads == 1) {
      reference = output;
      ASSERT_GT(reference.pairwise_similarities, 0u);
      ASSERT_FALSE(reference.clusters.empty());
    } else {
      EXPECT_EQ(output, reference)
          << dataset_name << " seed " << seed << ": Pairs with " << threads
          << " threads diverged from the serial run";
    }
  }
}

TEST(ParallelEquivalenceTest, AdaptiveLshOnPlantedClusters) {
  // 20 randomized planted datasets: cluster-size profile varies with seed.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(DeriveSeed(seed, 0x5eed5));
    std::vector<size_t> sizes;
    for (int c = 0; c < 5; ++c) {
      sizes.push_back(1 + rng.NextBelow(24));
    }
    for (int s = 0; s < 30; ++s) sizes.push_back(1);
    GeneratedDataset generated = test::MakePlantedDataset(sizes, seed);
    ExpectAdaptiveLshInvariantToThreads(generated, seed, /*k=*/3, "planted");
  }
}

TEST(ParallelEquivalenceTest, AdaptiveLshOnCoraLike) {
  for (uint64_t seed : {101, 102, 103, 104, 105}) {
    GeneratedDataset generated = SmallCoraLike(seed);
    ExpectAdaptiveLshInvariantToThreads(generated, seed, /*k=*/4, "cora-like");
  }
}

TEST(ParallelEquivalenceTest, AdaptiveLshOnSpotSigsLike) {
  for (uint64_t seed : {201, 202, 203}) {
    GeneratedDataset generated = SmallSpotSigsLike(seed);
    ExpectAdaptiveLshInvariantToThreads(generated, seed, /*k=*/4,
                                        "spotsigs-like");
  }
}

TEST(ParallelEquivalenceTest, LshBlockingOnPlantedAndCoraLike) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(DeriveSeed(seed, 0xb10c));
    std::vector<size_t> sizes;
    for (int c = 0; c < 4; ++c) sizes.push_back(1 + rng.NextBelow(18));
    for (int s = 0; s < 20; ++s) sizes.push_back(1);
    GeneratedDataset generated = test::MakePlantedDataset(sizes, seed);
    ExpectLshBlockingInvariantToThreads(generated, seed, /*k=*/3, "planted");
  }
  for (uint64_t seed : {301, 302}) {
    GeneratedDataset generated = SmallCoraLike(seed);
    ExpectLshBlockingInvariantToThreads(generated, seed, /*k=*/3, "cora-like");
  }
}

TEST(ParallelEquivalenceTest, AdaptiveLshPairwiseHeavy) {
  // With P forced to do nearly all the work (see PairwiseHeavyCostModel),
  // the tiled pairwise sweep becomes the dominant parallel path; one large
  // planted cluster pushes it past the serial cutoff into tiling.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(DeriveSeed(seed, 0xfa57));
    std::vector<size_t> sizes;
    sizes.push_back(120 + rng.NextBelow(60));
    for (int c = 0; c < 4; ++c) sizes.push_back(1 + rng.NextBelow(20));
    for (int s = 0; s < 30; ++s) sizes.push_back(1);
    GeneratedDataset generated = test::MakePlantedDataset(sizes, seed);
    ExpectAdaptiveLshInvariantToThreads(generated, seed, /*k=*/3,
                                        "planted-pairwise-heavy",
                                        PairwiseHeavyCostModel());
  }
}

TEST(ParallelEquivalenceTest, PairsBaselineOnPlantedClusters) {
  // 20 randomized planted datasets; the leading cluster spans multiple row
  // stripes so the tiled engine (not just the serial cutoff) is certified.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(DeriveSeed(seed, 0xba5e));
    std::vector<size_t> sizes;
    sizes.push_back(40 + rng.NextBelow(80));
    for (int c = 0; c < 4; ++c) sizes.push_back(1 + rng.NextBelow(24));
    for (int s = 0; s < 60; ++s) sizes.push_back(1);
    GeneratedDataset generated = test::MakePlantedDataset(sizes, seed);
    ExpectPairsBaselineInvariantToThreads(generated, seed, /*k=*/3, "planted");
  }
}

TEST(ParallelEquivalenceTest, PairsBaselineOnGeneratedWorkloads) {
  for (uint64_t seed : {401, 402}) {
    GeneratedDataset generated = SmallCoraLike(seed);
    ExpectPairsBaselineInvariantToThreads(generated, seed, /*k=*/4,
                                          "cora-like");
  }
  for (uint64_t seed : {501}) {
    GeneratedDataset generated = SmallSpotSigsLike(seed);
    ExpectPairsBaselineInvariantToThreads(generated, seed, /*k=*/4,
                                          "spotsigs-like");
  }
  // Multimodal exercises the dense cosine kernel and the OR rule inside the
  // tiled sweep.
  for (uint64_t seed : {601, 602}) {
    MultiModalConfig config;
    config.num_entities = 15;
    config.num_records = 140;
    config.seed = seed;
    GeneratedDataset generated = GenerateMultiModal(config);
    ExpectPairsBaselineInvariantToThreads(generated, seed, /*k=*/4,
                                          "multimodal");
  }
}

TEST(ParallelEquivalenceTest, GlobalPoolDefaultMatchesSerial) {
  // threads = 0 (the production default: whatever the global pool is sized
  // to) must also reproduce the serial output exactly.
  SetGlobalThreadCount(3);
  GeneratedDataset generated = test::MakePlantedDataset({20, 12, 7, 1, 1}, 77);
  ComparableOutput reference;
  for (int threads : {1, 0}) {
    AdaptiveLshConfig config;
    config.sequence.max_budget = 320;
    config.calibration_samples = 5;
    config.seed = 77;
    config.threads = threads;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    adalsh.set_cost_model(FixedCostModel());
    ComparableOutput output = Comparable(adalsh.Run(3));
    if (threads == 1) {
      reference = output;
    } else {
      EXPECT_EQ(output, reference);
    }
  }
}

TEST(ParallelEquivalenceTest, EnsureHashesParallelMatchesSerialValues) {
  // The batch hashing API computes the exact same cached values and the
  // exact same total hash count as record-at-a-time serial hashing.
  GeneratedDataset generated = test::MakePlantedDataset({10, 8, 6, 4}, 55);
  StatusOr<RuleHashStructure> structure =
      CompileRuleForHashing(generated.rule);
  ASSERT_TRUE(structure.ok());

  SchemePlan plan;
  plan.hashes_per_unit.assign(structure->units.size(), 96);

  HashEngine serial(generated.dataset, *structure, /*seed=*/9);
  std::vector<RecordId> ids = generated.dataset.AllRecordIds();
  for (RecordId r : ids) serial.EnsureHashes(r, plan);

  ThreadPool pool(8);
  HashEngine parallel(generated.dataset, *structure, /*seed=*/9);
  parallel.EnsureHashesParallel(
      std::span<const RecordId>(ids.data(), ids.size()), plan, &pool);

  EXPECT_EQ(parallel.total_hashes_computed(), serial.total_hashes_computed());
  // Spot-check bucket keys over a synthetic one-part table per unit.
  for (size_t u = 0; u < structure->units.size(); ++u) {
    TablePlan table;
    table.parts.push_back(TablePart{static_cast<int>(u), 0, 96});
    for (RecordId r : ids) {
      ASSERT_EQ(parallel.TableKey(r, table), serial.TableKey(r, table))
          << "unit " << u << " record " << r;
    }
  }
}

}  // namespace
}  // namespace adalsh
