#include "datagen/popular_images.h"

#include <gtest/gtest.h>

#include "distance/cosine.h"
#include "distance/rule.h"
#include "util/rng.h"

namespace adalsh {
namespace {

PopularImagesConfig SmallConfig() {
  PopularImagesConfig config;
  config.num_entities = 20;
  config.num_records = 200;
  config.seed = 31;
  return config;
}

TEST(PopularImagesTest, ShapeAndSchema) {
  GeneratedDataset generated = GeneratePopularImages(SmallConfig());
  EXPECT_EQ(generated.dataset.num_records(), 200u);
  EXPECT_EQ(generated.dataset.record(0).num_fields(), 1u);
  EXPECT_TRUE(generated.dataset.record(0).field(0).is_dense());
  EXPECT_EQ(generated.dataset.record(0).field(0).size(), 64u);  // 4^3 bins
}

TEST(PopularImagesTest, Deterministic) {
  GeneratedDataset a = GeneratePopularImages(SmallConfig());
  GeneratedDataset b = GeneratePopularImages(SmallConfig());
  for (RecordId r = 0; r < a.dataset.num_records(); ++r) {
    EXPECT_EQ(a.dataset.record(r).field(0).dense(),
              b.dataset.record(r).field(0).dense());
  }
}

TEST(PopularImagesTest, WithinEntityDistancesAreSmall) {
  GeneratedDataset generated = GeneratePopularImages(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  const std::vector<RecordId>& top = truth.cluster(0);
  ASSERT_GE(top.size(), 5u);
  // Record 0 of the cluster is the untransformed original; copies stay
  // within a few degrees of it.
  int close = 0, total = 0;
  for (size_t i = 1; i < top.size() && i < 20; ++i) {
    double degrees = NormalizedAngleToDegrees(
        CosineDistance(generated.dataset.record(top[0]).field(0).dense(),
                       generated.dataset.record(top[i]).field(0).dense()));
    ++total;
    close += (degrees < 5.0);
  }
  EXPECT_GT(static_cast<double>(close) / total, 0.8);
}

TEST(PopularImagesTest, CrossEntityDistancesAreLarge) {
  GeneratedDataset generated = GeneratePopularImages(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  Rng rng(7);
  int far = 0, total = 0;
  for (int i = 0; i < 200; ++i) {
    RecordId a = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    RecordId b = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    if (truth.entity_of(a) == truth.entity_of(b)) continue;
    double degrees = NormalizedAngleToDegrees(
        CosineDistance(generated.dataset.record(a).field(0).dense(),
                       generated.dataset.record(b).field(0).dense()));
    ++total;
    far += (degrees > 5.0);
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(far) / total, 0.95);
}

TEST(PopularImagesTest, ZipfExponentControlsTopSize) {
  PopularImagesConfig flat = SmallConfig();
  flat.zipf_exponent = 1.05;
  PopularImagesConfig steep = SmallConfig();
  steep.zipf_exponent = 1.2;
  GroundTruth flat_truth =
      GeneratePopularImages(flat).dataset.BuildGroundTruth();
  GroundTruth steep_truth =
      GeneratePopularImages(steep).dataset.BuildGroundTruth();
  EXPECT_GT(steep_truth.cluster(0).size(), flat_truth.cluster(0).size());
}

TEST(PopularImagesTest, RuleThresholdInDegrees) {
  PopularImagesConfig config = SmallConfig();
  config.angle_threshold_degrees = 5.0;
  GeneratedDataset generated = GeneratePopularImages(config);
  EXPECT_NEAR(generated.rule.threshold(), 5.0 / 180.0, 1e-12);
}

}  // namespace
}  // namespace adalsh
