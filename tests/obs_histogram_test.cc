#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/prometheus.h"

namespace adalsh {
namespace {

TEST(LatencyHistogramTest, DefaultBoundariesAreTheDocumentedLadder) {
  const std::vector<double>& bounds = LatencyHistogram::DefaultBoundaries();
  // Five buckets per decade from 1 microsecond through 1000 seconds.
  ASSERT_EQ(bounds.size(), 46u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 1000.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "ladder must strictly increase";
  }
  // Rounded to three significant digits: the second rung is 1.58e-06, not
  // 10^(1/5) * 1e-6 = 1.5848...e-06.
  EXPECT_DOUBLE_EQ(bounds[1], 1.58e-6);
  EXPECT_DOUBLE_EQ(bounds[5], 1e-5);
}

TEST(LatencyHistogramTest, LeSemanticsAtExactBoundaries) {
  LatencyHistogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 boundaries + overflow
  h.Add(1.0);   // le="1" includes the boundary itself
  h.Add(1.5);   // first bucket with boundary >= value
  h.Add(2.0);
  h.Add(4.0);
  h.Add(4.0001);  // above the last boundary -> +Inf overflow
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0001);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 4.0 + 4.0001);
}

TEST(LatencyHistogramTest, ZeroAndSubMicrosecondLandInTheFirstBucket) {
  LatencyHistogram h;
  h.Add(0.0);
  h.Add(1e-9);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogramTest, PercentileOnEmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.9), 0.0);
}

TEST(LatencyHistogramTest, PercentileClampsToObservedRange) {
  LatencyHistogram h;
  h.Add(3.3e-4);
  // A single sample: every percentile must report that sample's bucket
  // clamped to [min, max] — i.e. exactly the sample.
  EXPECT_DOUBLE_EQ(h.Percentile(1), 3.3e-4);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.3e-4);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3.3e-4);
}

TEST(LatencyHistogramTest, PercentileRanksAreExact) {
  // 100 samples spread one per value over [1, 100] in a unit-boundary
  // ladder: pK must land in the bucket holding the K-th smallest sample.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  LatencyHistogram h(bounds);
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogramExactly) {
  LatencyHistogram merged;
  LatencyHistogram reference;
  LatencyHistogram parts[3];
  // A deterministic multiset split across three parts in round-robin order;
  // the merged result must equal the single-histogram reference bucket for
  // bucket, whatever the split.
  for (int i = 0; i < 300; ++i) {
    const double value = 1e-6 * static_cast<double>(1 + (i * 37) % 5000);
    reference.Add(value);
    parts[i % 3].Add(value);
  }
  for (const LatencyHistogram& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  EXPECT_EQ(merged.bucket_counts(), reference.bucket_counts());
  EXPECT_DOUBLE_EQ(merged.Percentile(50), reference.Percentile(50));
  EXPECT_DOUBLE_EQ(merged.Percentile(99.9), reference.Percentile(99.9));
}

// The registry shards histograms per thread exactly like its counters:
// however the samples are distributed over writer threads, the snapshot's
// merged histogram is identical to a serial reference — exact counts, no
// sampling, no loss.
TEST(LatencyHistogramTest, RegistryMergeIsExactAcrossThreadCounts) {
  constexpr int kSamples = 4000;
  auto sample = [](int i) {
    return 1e-6 * static_cast<double>(1 + (i * 131) % 20000);
  };
  LatencyHistogram reference;
  for (int i = 0; i < kSamples; ++i) reference.Add(sample(i));

  for (int threads : {1, 2, 8}) {
    MetricsRegistry registry;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&registry, &sample, t, threads] {
        for (int i = t; i < kSamples; i += threads) {
          registry.RecordLatency("lat_seconds", sample(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    MetricsSnapshot snapshot = registry.Snapshot();
    const LatencyHistogram& merged = snapshot.histograms.at("lat_seconds");
    EXPECT_EQ(merged.count(), reference.count()) << "threads=" << threads;
    EXPECT_EQ(merged.bucket_counts(), reference.bucket_counts())
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(merged.Percentile(99), reference.Percentile(99))
        << "threads=" << threads;
  }
}

TEST(PrometheusTest, ExposesAllFourMetricKinds) {
  MetricsRegistry registry;
  registry.AddCounter("ops", 7);
  registry.SetGauge("depth", 2.5);
  registry.RecordValue("sizes", 10.0);
  registry.RecordLatency("lat_seconds", 5e-4);
  registry.RecordLatency("lat_seconds", 2.0e-3);
  const std::string text = WritePrometheusText(registry.Snapshot());

  EXPECT_NE(text.find("# TYPE adalsh_ops counter\nadalsh_ops 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE adalsh_depth gauge\nadalsh_depth 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("adalsh_sizes_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE adalsh_lat_seconds histogram\n"),
            std::string::npos);
  // The +Inf bucket must equal the total count, and _count must agree.
  EXPECT_NE(text.find("adalsh_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("adalsh_lat_seconds_count 2\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramLadderIsCumulativeAndComplete) {
  MetricsRegistry registry;
  registry.RecordLatency("lat_seconds", 1e-6);
  registry.RecordLatency("lat_seconds", 1e-3);
  registry.RecordLatency("lat_seconds", 5000.0);  // overflow bucket
  const std::string text = WritePrometheusText(registry.Snapshot());

  // Every boundary of the default ladder appears as a bucket series, and
  // the cumulative counts never decrease.
  size_t buckets = 0;
  uint64_t last_cumulative = 0;
  size_t pos = 0;
  const std::string needle = "adalsh_lat_seconds_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t cumulative =
        std::stoull(text.substr(value_at + 2));
    EXPECT_GE(cumulative, last_cumulative);
    last_cumulative = cumulative;
    ++buckets;
    pos = value_at;
  }
  EXPECT_EQ(buckets, LatencyHistogram::DefaultBoundaries().size() + 1);
  EXPECT_EQ(last_cumulative, 3u);  // the +Inf bucket counts everything
}

}  // namespace
}  // namespace adalsh
