#include "clustering/bin_index.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace adalsh {
namespace {

TEST(BinIndexTest, EmptyBehaviour) {
  BinIndex bins(100);
  EXPECT_TRUE(bins.empty());
  EXPECT_EQ(bins.size(), 0u);
  EXPECT_EQ(bins.LargestCount(), 0u);
}

TEST(BinIndexTest, PopLargestOrder) {
  BinIndex bins(100);
  bins.Insert(/*root=*/1, /*leaf_count=*/5);
  bins.Insert(2, 50);
  bins.Insert(3, 1);
  bins.Insert(4, 12);
  EXPECT_EQ(bins.LargestCount(), 50u);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 4);
  EXPECT_EQ(bins.PopLargest(), 1);
  EXPECT_EQ(bins.PopLargest(), 3);
  EXPECT_TRUE(bins.empty());
}

TEST(BinIndexTest, LargestWithinSameBin) {
  // 9, 12, 15 all live in bin floor(log2)=3; the max must win.
  BinIndex bins(100);
  bins.Insert(1, 9);
  bins.Insert(2, 15);
  bins.Insert(3, 12);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 3);
  EXPECT_EQ(bins.PopLargest(), 1);
}

TEST(BinIndexTest, InterleavedInsertPop) {
  BinIndex bins(1000);
  bins.Insert(1, 600);
  EXPECT_EQ(bins.PopLargest(), 1);
  bins.Insert(2, 4);
  bins.Insert(3, 300);  // smaller clusters inserted after a big pop
  EXPECT_EQ(bins.PopLargest(), 3);
  bins.Insert(4, 2);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 4);
}

TEST(BinIndexTest, SizeTracksOperations) {
  BinIndex bins(64);
  for (uint32_t c = 1; c <= 10; ++c) bins.Insert(static_cast<NodeId>(c), c);
  EXPECT_EQ(bins.size(), 10u);
  bins.PopLargest();
  bins.PopLargest();
  EXPECT_EQ(bins.size(), 8u);
}

TEST(BinIndexTest, SingletonCapacity) {
  BinIndex bins(1);
  bins.Insert(1, 1);
  EXPECT_EQ(bins.PopLargest(), 1);
}

TEST(BinIndexTest, MegaBucketWithLongSingletonTail) {
  // The skew shape sharded merges hammer (shard_equivalence_test's mega
  // cluster): one huge cluster in the top bin, hundreds of singletons in bin
  // 0, nothing in between. The top bin must drain first and cheaply — its
  // scan touches one entry — then the tail in insertion-stable max order.
  constexpr size_t kTail = 500;
  BinIndex bins(4096);
  for (size_t t = 0; t < kTail; ++t) {
    bins.Insert(static_cast<NodeId>(100 + t), 1);
  }
  bins.Insert(/*root=*/1, /*leaf_count=*/3000);
  EXPECT_EQ(bins.size(), kTail + 1);
  EXPECT_EQ(bins.LargestCount(), 3000u);
  EXPECT_EQ(bins.PopLargest(), 1);
  // Every remaining pop is a singleton; count them out exactly.
  for (size_t t = 0; t < kTail; ++t) {
    EXPECT_EQ(bins.LargestCount(), 1u) << "tail pop " << t;
    bins.PopLargest();
  }
  EXPECT_TRUE(bins.empty());
}

TEST(BinIndexTest, MegaBucketRefinesIntoTheTail) {
  // A mega cluster popped, split, and re-inserted as shrinking pieces — the
  // Largest-First working pattern over a skewed distribution. The index must
  // always surface the true maximum even as the former mega pieces cross
  // bin boundaries down into the tail's bins.
  BinIndex bins(1 << 14);
  for (NodeId r = 1000; r < 1100; ++r) bins.Insert(r, 2);
  NodeId next_root = 1;
  bins.Insert(next_root++, 10000);
  uint32_t last = 10000;
  int steps = 0;
  while (bins.LargestCount() > 2) {
    const uint32_t largest = bins.LargestCount();
    EXPECT_LE(largest, last);  // Largest-First: non-increasing pop sizes
    last = largest;
    bins.PopLargest();
    // Split ~60/40; singleton pieces retire instead of re-entering.
    const uint32_t a = (largest * 3 + 4) / 5;
    const uint32_t b = largest - a;
    if (a > 1) bins.Insert(next_root++, a);
    if (b > 1) bins.Insert(next_root++, b);
    ASSERT_LT(++steps, 10000);  // the split chain must terminate
  }
  // Only the tail 2s (and terminal split pieces of size 2) remain.
  while (!bins.empty()) {
    EXPECT_EQ(bins.LargestCount(), 2u);
    bins.PopLargest();
  }
}

TEST(BinIndexTest, SkewedRandomStressMatchesSortedReference) {
  // Zipf-ish random sizes (many 1s, few huge) inserted in random order with
  // interleaved pops must replay the multiset of sizes in non-increasing
  // order overall.
  Rng rng(DeriveSeed(21, 0xb175));
  std::vector<uint32_t> sizes;
  for (int i = 0; i < 400; ++i) {
    const uint64_t roll = rng.NextBelow(100);
    uint32_t size = 1;
    if (roll >= 98) {
      size = 2000 + static_cast<uint32_t>(rng.NextBelow(2000));
    } else if (roll >= 90) {
      size = 16 + static_cast<uint32_t>(rng.NextBelow(200));
    }
    sizes.push_back(size);
  }
  BinIndex bins(1 << 13);
  for (size_t i = 0; i < sizes.size(); ++i) {
    bins.Insert(static_cast<NodeId>(i), sizes[i]);
  }
  std::vector<uint32_t> popped;
  while (!bins.empty()) {
    popped.push_back(bins.LargestCount());
    bins.PopLargest();
  }
  std::vector<uint32_t> expected = sizes;
  std::sort(expected.begin(), expected.end(), std::greater<uint32_t>());
  EXPECT_EQ(popped, expected);
}

TEST(BinIndexDeathTest, PopEmptyAborts) {
  BinIndex bins(10);
  EXPECT_DEATH(bins.PopLargest(), "empty");
}

TEST(BinIndexDeathTest, OverCapacityAborts) {
  BinIndex bins(8);  // bins up to floor(log2(8)) = 3
  EXPECT_DEATH(bins.Insert(1, 16), "capacity");
}

}  // namespace
}  // namespace adalsh
