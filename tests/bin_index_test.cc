#include "clustering/bin_index.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(BinIndexTest, EmptyBehaviour) {
  BinIndex bins(100);
  EXPECT_TRUE(bins.empty());
  EXPECT_EQ(bins.size(), 0u);
  EXPECT_EQ(bins.LargestCount(), 0u);
}

TEST(BinIndexTest, PopLargestOrder) {
  BinIndex bins(100);
  bins.Insert(/*root=*/1, /*leaf_count=*/5);
  bins.Insert(2, 50);
  bins.Insert(3, 1);
  bins.Insert(4, 12);
  EXPECT_EQ(bins.LargestCount(), 50u);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 4);
  EXPECT_EQ(bins.PopLargest(), 1);
  EXPECT_EQ(bins.PopLargest(), 3);
  EXPECT_TRUE(bins.empty());
}

TEST(BinIndexTest, LargestWithinSameBin) {
  // 9, 12, 15 all live in bin floor(log2)=3; the max must win.
  BinIndex bins(100);
  bins.Insert(1, 9);
  bins.Insert(2, 15);
  bins.Insert(3, 12);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 3);
  EXPECT_EQ(bins.PopLargest(), 1);
}

TEST(BinIndexTest, InterleavedInsertPop) {
  BinIndex bins(1000);
  bins.Insert(1, 600);
  EXPECT_EQ(bins.PopLargest(), 1);
  bins.Insert(2, 4);
  bins.Insert(3, 300);  // smaller clusters inserted after a big pop
  EXPECT_EQ(bins.PopLargest(), 3);
  bins.Insert(4, 2);
  EXPECT_EQ(bins.PopLargest(), 2);
  EXPECT_EQ(bins.PopLargest(), 4);
}

TEST(BinIndexTest, SizeTracksOperations) {
  BinIndex bins(64);
  for (uint32_t c = 1; c <= 10; ++c) bins.Insert(static_cast<NodeId>(c), c);
  EXPECT_EQ(bins.size(), 10u);
  bins.PopLargest();
  bins.PopLargest();
  EXPECT_EQ(bins.size(), 8u);
}

TEST(BinIndexTest, SingletonCapacity) {
  BinIndex bins(1);
  bins.Insert(1, 1);
  EXPECT_EQ(bins.PopLargest(), 1);
}

TEST(BinIndexDeathTest, PopEmptyAborts) {
  BinIndex bins(10);
  EXPECT_DEATH(bins.PopLargest(), "empty");
}

TEST(BinIndexDeathTest, OverCapacityAborts) {
  BinIndex bins(8);  // bins up to floor(log2(8)) = 3
  EXPECT_DEATH(bins.Insert(1, 16), "capacity");
}

}  // namespace
}  // namespace adalsh
