// Shape regression tests: deterministic counter-based assertions that pin
// the workload geometry the paper's figures depend on. If a generator or
// algorithm change breaks one of these, the corresponding bench figure will
// have lost its paper shape (wall-clock benches themselves are too noisy to
// assert in unit tests).

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "datagen/spotsigs_like.h"
#include "eval/metrics.h"
#include "eval/recovery.h"

namespace adalsh {
namespace {

SpotSigsLikeConfig MiniSpotSigs(uint64_t seed = 42) {
  SpotSigsLikeConfig config;
  config.num_story_entities = 20;
  config.records_in_stories = 400;
  config.num_singletons = 300;
  config.seed = seed;
  return config;
}

TEST(ShapeTest, UnderBudgetedLshPaysInVerification) {
  // Fig. 15's U-shape, left side: LSH20's stage-1 clusters glue same-site
  // articles together, so its P verification does far more work than a
  // well-budgeted scheme's.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  LshBlockingConfig small;
  small.num_hashes = 20;
  LshBlockingConfig mid;
  mid.num_hashes = 320;
  FilterOutput lsh20 =
      LshBlocking(generated.dataset, generated.rule, small).Run(10);
  FilterOutput lsh320 =
      LshBlocking(generated.dataset, generated.rule, mid).Run(10);
  EXPECT_GT(lsh20.stats.pairwise_similarities,
            3 * lsh320.stats.pairwise_similarities);
}

TEST(ShapeTest, OverBudgetedLshPaysInHashing) {
  // Fig. 15's U-shape, right side: LSH2560 hashes 8x more than LSH320 for
  // the same answer.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  LshBlockingConfig mid;
  mid.num_hashes = 320;
  LshBlockingConfig large;
  large.num_hashes = 2560;
  FilterOutput lsh320 =
      LshBlocking(generated.dataset, generated.rule, mid).Run(10);
  FilterOutput lsh2560 =
      LshBlocking(generated.dataset, generated.rule, large).Run(10);
  EXPECT_GT(lsh2560.stats.hashes_computed,
            6 * lsh320.stats.hashes_computed);
  EXPECT_EQ(lsh2560.clusters.UnionOfTopClusters(10),
            lsh320.clusters.UnionOfTopClusters(10));
}

TEST(ShapeTest, AdaptiveHashWorkBetweenTheExtremes) {
  // The Fig. 9 mechanism: adaLSH's hash count sits far below LSH1280's.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  AdaptiveLshConfig config;
  config.calibration_samples = 30;
  config.seed = 3;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  // Fixed model (hashes 10x a pair evaluation): calibration is
  // wall-clock-timed, and a loaded machine can shift the jump decision
  // enough to move the hash count past the asserted bound.
  adalsh.set_cost_model(CostModel(1e-7, 1e-8));
  FilterOutput adaptive = adalsh.Run(10);
  LshBlockingConfig big;
  big.num_hashes = 1280;
  FilterOutput lsh1280 =
      LshBlocking(generated.dataset, generated.rule, big).Run(10);
  EXPECT_LT(adaptive.stats.hashes_computed,
            lsh1280.stats.hashes_computed / 2);
}

TEST(ShapeTest, RevisionsSplitStoriesUnderTheRule) {
  // Fig. 10(b)/11 driver: ground truth holds whole stories, but the 0.4
  // rule separates major revisions — exact resolution yields MORE clusters
  // than entities, and F1 Gold at small k dips below 1.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput exact = pairs.Run(1000000);
  EXPECT_GT(exact.clusters.clusters.size(), truth.num_entities());
  SetAccuracy gold = GoldAccuracy(pairs.Run(5).clusters, truth, 5);
  EXPECT_LT(gold.f1, 0.999);
  EXPECT_GT(gold.f1, 0.6);
}

TEST(ShapeTest, BkThenRecoveryRestoresSplitStories) {
  // Fig. 14 driver: perfect recovery over a bk output reconstructs the
  // split stories exactly.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  AdaptiveLshConfig config;
  config.calibration_samples = 30;
  config.seed = 5;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  int k = 5;
  FilterOutput at_bk = adalsh.Run(3 * k);
  Clustering recovered =
      PerfectRecovery(at_bk.clusters.UnionOfTopClusters(3 * k), truth);
  RankedAccuracy ranked = ComputeRankedAccuracy(recovered, truth, k);
  EXPECT_GT(ranked.map, 0.99);
  EXPECT_GT(ranked.mar, 0.99);
  // And recall improves over the plain k output.
  FilterOutput at_k = adalsh.Run(k);
  double recall_k = ComputeSetAccuracy(at_k.clusters.UnionOfTopClusters(k),
                                       truth.TopKRecords(k))
                        .recall;
  double recall_bk =
      ComputeSetAccuracy(at_bk.clusters.UnionOfTopClusters(3 * k),
                         truth.TopKRecords(k))
          .recall;
  EXPECT_GT(recall_bk, recall_k);
}

TEST(ShapeTest, CostNoiseUnderEstimateCausesEarlyPairwise) {
  // Fig. 21 driver: nf = 1/5 under-estimates P, so P runs sooner and on
  // larger clusters — strictly more pairwise work, same answer.
  GeneratedDataset generated = GenerateSpotSigsLike(MiniSpotSigs());
  auto run = [&](double nf) {
    AdaptiveLshConfig config;
    config.calibration_samples = 30;
    config.seed = 7;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    // A fixed cost model instead of the wall-clock calibration: the shape
    // under study (noise factor shifting the hash/P break-even) must not
    // depend on how fast this machine's kernels happen to be. With budget
    // deltas of 20·2^i and ~20-record story clusters (C(20,2) = 190), a
    // hash/pair ratio of 4 puts the first upgrade decision on the
    // break-even: nf=1 defers (20·4 < 190), nf=0.2 jumps (190 <= 20·4/0.2).
    CostModel model(/*cost_per_hash=*/4e-8, /*cost_per_pair=*/1e-8);
    model.set_pairwise_noise_factor(nf);
    adalsh.set_cost_model(model);
    return adalsh.Run(10);
  };
  FilterOutput clean = run(1.0);
  FilterOutput under = run(0.2);
  EXPECT_GT(under.stats.pairwise_similarities,
            clean.stats.pairwise_similarities);
  EXPECT_EQ(under.clusters.UnionOfTopClusters(10),
            clean.clusters.UnionOfTopClusters(10));
}

}  // namespace
}  // namespace adalsh
