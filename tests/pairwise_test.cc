#include "core/pairwise.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/numeric.h"

namespace adalsh {
namespace {

TEST(PairwiseTest, RecoversExactClusters) {
  GeneratedDataset generated = test::MakePlantedDataset({8, 5, 3, 1}, 3);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots =
      pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  std::vector<size_t> sizes;
  for (NodeId root : roots) sizes.push_back(forest.LeafCount(root));
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_EQ(sizes, (std::vector<size_t>{8, 5, 3, 1}));
}

TEST(PairwiseTest, ProducerIsPairwise) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 2}, 5);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots =
      pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  for (NodeId root : roots) {
    EXPECT_EQ(forest.Producer(root), kProducerPairwise);
  }
}

TEST(PairwiseTest, TransitiveClosureSkipsPairs) {
  // With clusters present, skipped same-tree pairs reduce the similarity
  // count below C(n, 2).
  GeneratedDataset generated = test::MakePlantedDataset({10, 10}, 7);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  uint64_t all_pairs = PairCount(20);
  EXPECT_LT(pairwise.total_similarities(), all_pairs);
  EXPECT_GT(pairwise.total_similarities(), 0u);
}

TEST(PairwiseTest, SingletonInput) {
  GeneratedDataset generated = test::MakePlantedDataset({1}, 9);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots = pairwise.Apply({0}, &forest);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(forest.LeafCount(roots[0]), 1u);
  EXPECT_EQ(pairwise.total_similarities(), 0u);
}

TEST(PairwiseTest, SubsetApplication) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 4}, 11);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  // Mix two records of each entity.
  std::vector<NodeId> roots = pairwise.Apply({0, 1, 4, 5}, &forest);
  std::vector<size_t> sizes;
  for (NodeId root : roots) sizes.push_back(forest.LeafCount(root));
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 2}));
}

TEST(PairwiseTest, CountsAccumulateAcrossInvocations) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 3}, 13);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  pairwise.Apply({0, 1, 2}, &forest);
  uint64_t first = pairwise.total_similarities();
  pairwise.Apply({3, 4, 5}, &forest);
  EXPECT_GT(pairwise.total_similarities(), first);
}

}  // namespace
}  // namespace adalsh
