#include "core/pairwise.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adalsh {
namespace {

/// Clusters of an Apply run in root order, each as the root's leaf chain —
/// the full observable output of P (order included).
struct ApplyResult {
  std::vector<std::vector<RecordId>> clusters;
  uint64_t total_similarities;

  bool operator==(const ApplyResult&) const = default;
};

ApplyResult RunApply(const GeneratedDataset& generated,
                     const std::vector<RecordId>& records, ThreadPool* pool) {
  PairwiseComputer pairwise(generated.dataset, generated.rule, pool);
  ParentPointerForest forest;
  std::vector<NodeId> roots = pairwise.Apply(records, &forest);
  ApplyResult result;
  for (NodeId root : roots) result.clusters.push_back(forest.Leaves(root));
  result.total_similarities = pairwise.total_similarities();
  return result;
}

/// A ~500-record workload spanning many row stripes and column tiles:
/// a few large clusters, mid-size clusters straddling stripe boundaries,
/// and a singleton tail.
GeneratedDataset StripeCrossingDataset(uint64_t seed) {
  Rng rng(DeriveSeed(seed, 0x5741));
  std::vector<size_t> sizes = {90, 70, 50};
  for (int c = 0; c < 8; ++c) sizes.push_back(5 + rng.NextBelow(25));
  while (true) {
    size_t total = 0;
    for (size_t s : sizes) total += s;
    if (total >= 500) break;
    sizes.push_back(1);
  }
  return test::MakePlantedDataset(sizes, seed);
}

TEST(PairwiseTest, RecoversExactClusters) {
  GeneratedDataset generated = test::MakePlantedDataset({8, 5, 3, 1}, 3);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots =
      pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  std::vector<size_t> sizes;
  for (NodeId root : roots) sizes.push_back(forest.LeafCount(root));
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_EQ(sizes, (std::vector<size_t>{8, 5, 3, 1}));
}

TEST(PairwiseTest, ProducerIsPairwise) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 2}, 5);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots =
      pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  for (NodeId root : roots) {
    EXPECT_EQ(forest.Producer(root), kProducerPairwise);
  }
}

TEST(PairwiseTest, TransitiveClosureSkipsPairs) {
  // With clusters present, skipped same-tree pairs reduce the similarity
  // count below C(n, 2).
  GeneratedDataset generated = test::MakePlantedDataset({10, 10}, 7);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  pairwise.Apply(generated.dataset.AllRecordIds(), &forest);
  uint64_t all_pairs = PairCount(20);
  EXPECT_LT(pairwise.total_similarities(), all_pairs);
  EXPECT_GT(pairwise.total_similarities(), 0u);
}

TEST(PairwiseTest, SingletonInput) {
  GeneratedDataset generated = test::MakePlantedDataset({1}, 9);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  std::vector<NodeId> roots = pairwise.Apply({0}, &forest);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(forest.LeafCount(roots[0]), 1u);
  EXPECT_EQ(pairwise.total_similarities(), 0u);
}

TEST(PairwiseTest, SubsetApplication) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 4}, 11);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  // Mix two records of each entity.
  std::vector<NodeId> roots = pairwise.Apply({0, 1, 4, 5}, &forest);
  std::vector<size_t> sizes;
  for (NodeId root : roots) sizes.push_back(forest.LeafCount(root));
  std::sort(sizes.rbegin(), sizes.rend());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 2}));
}

TEST(PairwiseTest, ParallelSweepMatchesSerialOnStripeCrossingInput) {
  // The tiled engine must reproduce the serial sweep bit for bit — same
  // clusters, same leaf-chain order, same root order, same similarity
  // count — on an input large enough to span many stripes and tiles.
  test::ScopedParallelCutoff force_tiled(1);
  for (uint64_t seed : {1, 2, 3}) {
    GeneratedDataset generated = StripeCrossingDataset(seed);
    std::vector<RecordId> records = generated.dataset.AllRecordIds();
    ASSERT_GE(records.size(), 500u);
    ApplyResult serial = RunApply(generated, records, nullptr);
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      EXPECT_EQ(RunApply(generated, records, &pool), serial)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(PairwiseTest, ParallelSweepMatchesSerialOnSubsetOrder) {
  // Apply sees records in caller order, not id order; the equivalence must
  // hold for shuffled subsets too.
  test::ScopedParallelCutoff force_tiled(1);
  GeneratedDataset generated = StripeCrossingDataset(9);
  std::vector<RecordId> records = generated.dataset.AllRecordIds();
  Rng rng(DeriveSeed(9, 0x5u));
  for (size_t i = records.size(); i > 1; --i) {
    std::swap(records[i - 1], records[rng.NextBelow(i)]);
  }
  records.resize(300);
  ApplyResult serial = RunApply(generated, records, nullptr);
  ThreadPool pool(8);
  EXPECT_EQ(RunApply(generated, records, &pool), serial);
}

TEST(PairwiseTest, PureClusterEvaluatesExactlyNMinusOnePairs) {
  // One 200-record entity: row 0 merges everything as it sweeps, so the
  // closure skip reduces C(200, 2) evaluations to exactly 199 — in the
  // serial sweep and, by the determinism contract, in the tiled sweep.
  test::ScopedParallelCutoff force_tiled(1);
  GeneratedDataset generated = test::MakePlantedDataset({200}, 21);
  std::vector<RecordId> records = generated.dataset.AllRecordIds();
  ApplyResult serial = RunApply(generated, records, nullptr);
  EXPECT_EQ(serial.total_similarities, 199u);
  ASSERT_EQ(serial.clusters.size(), 1u);
  EXPECT_EQ(serial.clusters[0].size(), 200u);
  ThreadPool pool(8);
  ApplyResult parallel = RunApply(generated, records, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(PairwiseTest, CountsAccumulateAcrossInvocations) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 3}, 13);
  PairwiseComputer pairwise(generated.dataset, generated.rule);
  ParentPointerForest forest;
  pairwise.Apply({0, 1, 2}, &forest);
  uint64_t first = pairwise.total_similarities();
  pairwise.Apply({3, 4, 5}, &forest);
  EXPECT_GT(pairwise.total_similarities(), first);
}

}  // namespace
}  // namespace adalsh
