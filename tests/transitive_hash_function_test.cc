#include "core/transitive_hash_function.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/scheme_optimizer.h"
#include "test_util.h"

namespace adalsh {
namespace {

struct HasherFixture {
  GeneratedDataset generated;
  RuleHashStructure structure;

  explicit HasherFixture(std::vector<size_t> sizes, uint64_t seed = 5)
      : generated(test::MakePlantedDataset(sizes, seed)),
        structure(CompileRuleForHashing(generated.rule).value()) {}

  SchemePlan PlanForBudget(int budget) {
    OptimizerConfig config;
    return BuildPlan(structure,
                     OptimizeComposite(structure, budget, config, nullptr));
  }
};

TEST(TransitiveHasherTest, ClustersPlantedEntities) {
  HasherFixture setup({20, 10, 5, 1, 1});
  HashEngine engine(setup.generated.dataset, setup.structure, 7);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  SchemePlan plan = setup.PlanForBudget(640);
  std::vector<NodeId> roots =
      hasher.Apply(setup.generated.dataset.AllRecordIds(), plan, 0);

  // With a generous budget, the output should be (nearly) the ground truth:
  // 5 clusters with the planted sizes.
  std::vector<size_t> sizes;
  for (NodeId root : roots) sizes.push_back(forest.LeafCount(root));
  std::sort(sizes.rbegin(), sizes.rend());
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes[0], 20u);
  EXPECT_EQ(sizes[1], 10u);
  EXPECT_EQ(sizes[2], 5u);
}

TEST(TransitiveHasherTest, ConservativeEvaluation) {
  // Property 1: ground-truth clusters should (almost) never split, even for
  // small budgets — they may merge with others.
  HasherFixture setup({15, 15, 8});
  HashEngine engine(setup.generated.dataset, setup.structure, 11);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  SchemePlan plan = setup.PlanForBudget(40);
  std::vector<NodeId> roots =
      hasher.Apply(setup.generated.dataset.AllRecordIds(), plan, 0);
  GroundTruth truth = setup.generated.dataset.BuildGroundTruth();
  // Count how many output clusters each ground-truth entity spans.
  for (size_t rank = 0; rank < truth.num_entities(); ++rank) {
    std::set<NodeId> spanned;
    for (NodeId root : roots) {
      for (RecordId r : forest.Leaves(root)) {
        if (truth.entity_of(r) == truth.entity_at_rank(rank)) {
          spanned.insert(root);
        }
      }
    }
    EXPECT_LE(spanned.size(), 2u) << "entity rank " << rank << " split";
  }
}

TEST(TransitiveHasherTest, OutputPartitionsInput) {
  HasherFixture setup({9, 4, 2, 1});
  HashEngine engine(setup.generated.dataset, setup.structure, 13);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  std::vector<RecordId> input = setup.generated.dataset.AllRecordIds();
  std::vector<NodeId> roots = hasher.Apply(input, setup.PlanForBudget(80), 0);
  std::vector<RecordId> covered;
  for (NodeId root : roots) {
    for (RecordId r : forest.Leaves(root)) covered.push_back(r);
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, input);  // every record exactly once
}

TEST(TransitiveHasherTest, ProducerTagApplied) {
  HasherFixture setup({3, 2});
  HashEngine engine(setup.generated.dataset, setup.structure, 17);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  std::vector<NodeId> roots =
      hasher.Apply(setup.generated.dataset.AllRecordIds(),
                   setup.PlanForBudget(40), 3);
  for (NodeId root : roots) EXPECT_EQ(forest.Producer(root), 3);
}

TEST(TransitiveHasherTest, SubsetInvocationOnlyTouchesSubset) {
  HasherFixture setup({6, 6});
  HashEngine engine(setup.generated.dataset, setup.structure, 19);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  // Apply to the first entity's records only.
  std::vector<RecordId> subset = {0, 1, 2, 3, 4, 5};
  std::vector<NodeId> roots =
      hasher.Apply(subset, setup.PlanForBudget(160), 1);
  size_t total = 0;
  for (NodeId root : roots) total += forest.LeafCount(root);
  EXPECT_EQ(total, subset.size());
}

TEST(TransitiveHasherTest, FreshTablesPerInvocation) {
  // Two invocations over disjoint subsets must not merge across invocations.
  HasherFixture setup({4, 4});
  HashEngine engine(setup.generated.dataset, setup.structure, 23);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  SchemePlan plan = setup.PlanForBudget(160);
  std::vector<NodeId> first = hasher.Apply({0, 1, 2, 3}, plan, 0);
  std::vector<NodeId> second = hasher.Apply({4, 5, 6, 7}, plan, 0);
  for (NodeId root : second) {
    for (RecordId r : forest.Leaves(root)) EXPECT_GE(r, 4u);
  }
  // First invocation's trees still intact.
  size_t first_total = 0;
  for (NodeId root : first) first_total += forest.LeafCount(root);
  EXPECT_EQ(first_total, 4u);
}

TEST(TransitiveHasherTest, IncrementalReuseAcrossPlans) {
  // Applying a small plan then a large one computes only the delta.
  HasherFixture setup({10});
  HashEngine engine(setup.generated.dataset, setup.structure, 29);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          setup.generated.dataset.num_records());
  SchemePlan small = setup.PlanForBudget(40);
  SchemePlan large = setup.PlanForBudget(80);
  std::vector<RecordId> all = setup.generated.dataset.AllRecordIds();
  hasher.Apply(all, small, 0);
  uint64_t after_small = engine.total_hashes_computed();
  EXPECT_EQ(after_small, 40u * all.size());
  hasher.Apply(all, large, 1);
  uint64_t after_large = engine.total_hashes_computed();
  EXPECT_EQ(after_large, 80u * all.size());  // only the 40-hash delta added
}

}  // namespace
}  // namespace adalsh
