#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adalsh {
namespace {

TEST(CostModelTest, CostArithmetic) {
  CostModel model(/*cost_per_hash=*/2.0, /*cost_per_pair=*/10.0);
  EXPECT_DOUBLE_EQ(model.HashCost(20), 40.0);
  EXPECT_DOUBLE_EQ(model.HashUpgradeCost(20, 40), 40.0);
  EXPECT_DOUBLE_EQ(model.PairwiseCost(5), 100.0);  // 10 pairs * 10
  EXPECT_DOUBLE_EQ(model.PairwiseCost(1), 0.0);
}

TEST(CostModelTest, JumpDecisionLine5) {
  // (cost_{t+1} - cost_t) * |C| >= cost_P * C(|C|, 2)
  CostModel model(1.0, 1.0);
  // Upgrade 20 -> 40 on 5 records: 100 >= 10 -> jump to P.
  EXPECT_TRUE(model.ShouldJumpToPairwise(20, 40, 5));
  // On 200 records: 4000 >= 19900? No -> keep hashing.
  EXPECT_FALSE(model.ShouldJumpToPairwise(20, 40, 200));
}

TEST(CostModelTest, SingletonAlwaysJumps) {
  CostModel model(1.0, 1e9);
  EXPECT_TRUE(model.ShouldJumpToPairwise(20, 40, 1));
}

TEST(CostModelTest, NoiseFactorShiftsDecision) {
  CostModel model(1.0, 1.0);
  // Boundary case: upgrade cost 20*n vs pairs n(n-1)/2 — crossover ~41.
  EXPECT_TRUE(model.ShouldJumpToPairwise(20, 40, 40));
  model.set_pairwise_noise_factor(5.0);  // over-estimate P cost
  EXPECT_FALSE(model.ShouldJumpToPairwise(20, 40, 40));
  model.set_pairwise_noise_factor(0.2);  // under-estimate P cost
  EXPECT_TRUE(model.ShouldJumpToPairwise(20, 40, 150));
}

TEST(CostModelTest, SampledPurityJumpsEarlierOnPureClusters) {
  // A large pure cluster: conservative model says "keep hashing" for a small
  // upgrade, but the sampled model sees ~100% match fraction and a nearly
  // linear closure-skipped P cost, so it jumps.
  GeneratedDataset generated = test::MakePlantedDataset({200}, 3);
  CostModel model(/*cost_per_hash=*/1.0, /*cost_per_pair=*/1.0);
  std::vector<RecordId> cluster = generated.dataset.AllRecordIds();
  // Upgrade 20 -> 40: 20 * 200 = 4000. Conservative P: C(200,2) = 19900.
  EXPECT_FALSE(model.ShouldJumpToPairwise(20, 40, cluster.size()));
  Rng rng(1);
  uint64_t evals = 0;
  EXPECT_TRUE(model.ShouldJumpToPairwiseSampled(
      generated.dataset, generated.rule, cluster, 20, 40, &rng, 20, &evals));
  EXPECT_EQ(evals, 20u);
}

TEST(CostModelTest, SampledPurityConservativeOnMixedClusters) {
  // A cluster that is actually many unrelated entities: match fraction ~0,
  // so the sampled estimate degenerates to the conservative one.
  GeneratedDataset generated =
      test::MakePlantedDataset(std::vector<size_t>(100, 1), 5);
  CostModel model(1.0, 1.0);
  std::vector<RecordId> cluster = generated.dataset.AllRecordIds();
  Rng rng(2);
  // Upgrade 20 -> 40 on 100 records: 2000 < C(100,2) = 4950 -> no jump
  // under either model.
  EXPECT_FALSE(model.ShouldJumpToPairwise(20, 40, cluster.size()));
  EXPECT_FALSE(model.ShouldJumpToPairwiseSampled(
      generated.dataset, generated.rule, cluster, 20, 40, &rng));
}

TEST(CostModelTest, SampledPurityFallsBackOnTinyClusters) {
  GeneratedDataset generated = test::MakePlantedDataset({5}, 7);
  CostModel model(1.0, 1.0);
  std::vector<RecordId> cluster = generated.dataset.AllRecordIds();
  Rng rng(3);
  uint64_t evals = 99;
  bool sampled = model.ShouldJumpToPairwiseSampled(
      generated.dataset, generated.rule, cluster, 20, 40, &rng, 20, &evals);
  EXPECT_EQ(sampled, model.ShouldJumpToPairwise(20, 40, cluster.size()));
  EXPECT_EQ(evals, 0u);  // no sampling spent
}

TEST(CostModelTest, CalibrationProducesPositiveCosts) {
  GeneratedDataset generated = test::MakePlantedDataset({10, 10, 5}, 3);
  CostModel model =
      CostModel::Calibrate(generated.dataset, generated.rule, 50, 1);
  EXPECT_GT(model.cost_per_hash(), 0.0);
  EXPECT_GT(model.cost_per_pair(), 0.0);
  // A pairwise rule evaluation on token sets costs more than one raw hash of
  // a well-batched family... not guaranteed on all machines, but both should
  // be well under a millisecond.
  EXPECT_LT(model.cost_per_hash(), 1e-3);
  EXPECT_LT(model.cost_per_pair(), 1e-3);
}

}  // namespace
}  // namespace adalsh
