#include "lsh/composite_scheme.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(CompileRuleTest, LeafIsOneUnitOneGroup) {
  StatusOr<RuleHashStructure> structure =
      CompileRuleForHashing(MatchRule::Leaf(0, 0.5));
  ASSERT_TRUE(structure.ok());
  EXPECT_EQ(structure->units.size(), 1u);
  EXPECT_EQ(structure->groups, (std::vector<std::vector<int>>{{0}}));
  EXPECT_DOUBLE_EQ(structure->units[0].threshold, 0.5);
}

TEST(CompileRuleTest, WeightedAverageIsOneUnit) {
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(
      MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3));
  ASSERT_TRUE(structure.ok());
  EXPECT_EQ(structure->units.size(), 1u);
  EXPECT_EQ(structure->units[0].fields, (std::vector<FieldId>{0, 1}));
}

TEST(CompileRuleTest, AndMakesOneGroupManyUnits) {
  MatchRule rule =
      MatchRule::And({MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3),
                      MatchRule::Leaf(2, 0.8)});
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ASSERT_TRUE(structure.ok());
  EXPECT_EQ(structure->units.size(), 2u);
  EXPECT_EQ(structure->groups, (std::vector<std::vector<int>>{{0, 1}}));
}

TEST(CompileRuleTest, OrMakesGroupPerBranch) {
  MatchRule rule = MatchRule::Or(
      {MatchRule::Leaf(0, 0.5),
       MatchRule::And({MatchRule::Leaf(1, 0.4), MatchRule::Leaf(2, 0.6)})});
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ASSERT_TRUE(structure.ok());
  EXPECT_EQ(structure->units.size(), 3u);
  EXPECT_EQ(structure->groups,
            (std::vector<std::vector<int>>{{0}, {1, 2}}));
}

TEST(CompileRuleTest, NestedOrInsideAndRejected) {
  MatchRule rule = MatchRule::And(
      {MatchRule::Leaf(0, 0.5),
       MatchRule::Or({MatchRule::Leaf(1, 0.5), MatchRule::Leaf(2, 0.5)})});
  EXPECT_FALSE(CompileRuleForHashing(rule).ok());
}

TEST(CompileRuleTest, OrOfOrRejected) {
  MatchRule inner = MatchRule::Or({MatchRule::Leaf(0, 0.5)});
  EXPECT_FALSE(CompileRuleForHashing(MatchRule::Or({inner})).ok());
}

TEST(GroupSchemeTest, BudgetArithmetic) {
  GroupScheme group;
  group.w = {10, 5};
  group.z = 4;
  EXPECT_EQ(group.hashes_per_table(), 15);
  EXPECT_EQ(group.budget(), 60);
  group.w = {10};
  group.w_rem = 3;
  EXPECT_EQ(group.budget(), 43);
}

TEST(BuildPlanTest, SingleGroupLayout) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.5});
  structure.groups = {{0}};
  CompositeScheme scheme;
  GroupScheme group;
  group.w = {3};
  group.z = 2;
  group.w_rem = 1;
  scheme.groups.push_back(group);
  SchemePlan plan = BuildPlan(structure, scheme);
  ASSERT_EQ(plan.tables.size(), 3u);  // 2 full + 1 partial
  EXPECT_EQ(plan.tables[0].parts[0].begin, 0u);
  EXPECT_EQ(plan.tables[0].parts[0].end, 3u);
  EXPECT_EQ(plan.tables[1].parts[0].begin, 3u);
  EXPECT_EQ(plan.tables[1].parts[0].end, 6u);
  EXPECT_EQ(plan.tables[2].parts[0].begin, 6u);
  EXPECT_EQ(plan.tables[2].parts[0].end, 7u);
  EXPECT_EQ(plan.hashes_per_unit, (std::vector<size_t>{7}));
  EXPECT_EQ(plan.total_hashes(), 7u);
}

TEST(BuildPlanTest, AndGroupInterleavesUnits) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.3});
  structure.units.push_back({{1}, {1.0}, 0.8});
  structure.groups = {{0, 1}};
  CompositeScheme scheme;
  GroupScheme group;
  group.w = {4, 2};
  group.z = 3;
  scheme.groups.push_back(group);
  SchemePlan plan = BuildPlan(structure, scheme);
  ASSERT_EQ(plan.tables.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    ASSERT_EQ(plan.tables[t].parts.size(), 2u);
    EXPECT_EQ(plan.tables[t].parts[0].unit, 0);
    EXPECT_EQ(plan.tables[t].parts[0].end - plan.tables[t].parts[0].begin, 4u);
    EXPECT_EQ(plan.tables[t].parts[1].unit, 1);
    EXPECT_EQ(plan.tables[t].parts[1].end - plan.tables[t].parts[1].begin, 2u);
  }
  EXPECT_EQ(plan.hashes_per_unit, (std::vector<size_t>{12, 6}));
}

TEST(BuildPlanTest, LargerSchemeReusesPrefixIndices) {
  // Incremental-computation at plan level: a bigger scheme's per-unit index
  // consumption is a superset prefix of a smaller one's.
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.5});
  structure.groups = {{0}};
  CompositeScheme small, large;
  GroupScheme gs;
  gs.w = {2};
  gs.z = 5;
  small.groups.push_back(gs);
  gs.w = {4};
  gs.z = 10;
  large.groups.push_back(gs);
  SchemePlan small_plan = BuildPlan(structure, small);
  SchemePlan large_plan = BuildPlan(structure, large);
  EXPECT_LE(small_plan.hashes_per_unit[0], large_plan.hashes_per_unit[0]);
}

TEST(CompositeSchemeTest, ToStringShapes) {
  CompositeScheme scheme;
  GroupScheme g1;
  g1.w = {30};
  g1.z = 70;
  scheme.groups.push_back(g1);
  EXPECT_EQ(scheme.ToString(), "(w=30,z=70)");
  GroupScheme g2;
  g2.w = {4, 2};
  g2.z = 3;
  g2.constraint_met = false;
  scheme.groups.push_back(g2);
  EXPECT_EQ(scheme.ToString(), "(w=30,z=70) | (w=4+2,z=3,unconstrained)");
}

}  // namespace
}  // namespace adalsh
