#include "io/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

std::vector<std::vector<std::string>> ReadAll(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(&in);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  for (;;) {
    StatusOr<bool> more = reader.ReadRow(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    rows.push_back(row);
  }
  return rows;
}

TEST(CsvReaderTest, SimpleRows) {
  auto rows = ReadAll("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvReaderTest, MissingFinalNewline) {
  auto rows = ReadAll("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReaderTest, QuotedFields) {
  auto rows = ReadAll("\"hello, world\",plain\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "hello, world");
  EXPECT_EQ(rows[0][1], "plain");
}

TEST(CsvReaderTest, EscapedQuotes) {
  auto rows = ReadAll("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvReaderTest, NewlineInsideQuotes) {
  auto rows = ReadAll("\"two\nlines\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "two\nlines");
}

TEST(CsvReaderTest, CrLfRows) {
  auto rows = ReadAll("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReaderTest, EmptyFields) {
  auto rows = ReadAll(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReaderTest, UnterminatedQuoteIsError) {
  std::istringstream in("\"oops\n");
  CsvReader reader(&in);
  std::vector<std::string> row;
  StatusOr<bool> more = reader.ReadRow(&row);
  EXPECT_FALSE(more.ok());
}

TEST(CsvWriteTest, RoundTrip) {
  std::ostringstream out;
  WriteCsvRow(&out, {"plain", "with,comma", "with\"quote", "multi\nline"});
  auto rows = ReadAll(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"plain", "with,comma",
                                               "with\"quote", "multi\nline"}));
}

TEST(CsvWriteTest, CustomDelimiter) {
  std::ostringstream out;
  WriteCsvRow(&out, {"a", "b"}, '\t');
  EXPECT_EQ(out.str(), "a\tb\n");
}

}  // namespace
}  // namespace adalsh
