#include "text/spot_signatures.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

SpotSigConfig SmallConfig() {
  SpotSigConfig config;
  config.antecedents = {"the", "a", "is"};
  config.chain_length = 2;
  config.spot_distance = 1;
  return config;
}

TEST(SpotSignaturesTest, AnchorsAtAntecedents) {
  // "the quick fox" -> one signature anchored at "the" chaining quick, fox.
  std::vector<uint64_t> sigs = SpotSignatures("the quick fox", SmallConfig());
  EXPECT_EQ(sigs.size(), 1u);
}

TEST(SpotSignaturesTest, SkipsAnchorsWithoutEnoughTokens) {
  // "quick the fox": only one content token after "the" — no signature.
  EXPECT_TRUE(SpotSignatures("quick the fox", SmallConfig()).empty());
}

TEST(SpotSignaturesTest, ChainSkipsAntecedents) {
  // "the a quick fox": chain after "the" skips "a" and uses quick, fox; the
  // "a" anchor also yields quick, fox — but with a different antecedent, so
  // the signatures differ.
  std::vector<uint64_t> sigs =
      SpotSignatures("the a quick fox", SmallConfig());
  EXPECT_EQ(sigs.size(), 2u);
  EXPECT_NE(sigs[0], sigs[1]);
}

TEST(SpotSignaturesTest, SpotDistanceSkipsContent) {
  SpotSigConfig config = SmallConfig();
  config.spot_distance = 2;
  // "the w1 w2 w3": chain = w1, w3.
  std::vector<uint64_t> with_skip =
      SpotSignatures("the w1 w2 w3", config);
  ASSERT_EQ(with_skip.size(), 1u);
  // Same signature as chaining w1, w3 directly at distance 1.
  SpotSigConfig direct = SmallConfig();
  std::vector<uint64_t> reference = SpotSignatures("the w1 w3", direct);
  ASSERT_EQ(reference.size(), 1u);
  EXPECT_EQ(with_skip[0], reference[0]);
}

TEST(SpotSignaturesTest, NearDuplicatesShareMostSignatures) {
  SpotSigConfig config;  // default antecedents, chain 3
  std::string original =
      "the committee was quick to dismiss a report that the numbers were "
      "wrong and that the analysis did have a flaw in the model of the "
      "economy with a small bias in the data";
  // One word changed near the end.
  std::string near_duplicate =
      "the committee was quick to dismiss a report that the numbers were "
      "wrong and that the analysis did have a flaw in the model of the "
      "economy with a small bias in the sample";
  std::vector<uint64_t> a = SpotSignatures(original, config);
  std::vector<uint64_t> b = SpotSignatures(near_duplicate, config);
  ASSERT_GT(a.size(), 5u);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> shared;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(shared));
  EXPECT_GT(shared.size() * 2, a.size());  // more than half shared
}

TEST(SpotSignaturesTest, DefaultAntecedentsNonEmpty) {
  EXPECT_FALSE(SpotSigConfig::DefaultAntecedents().empty());
}

TEST(SpotSignaturesTest, EmptyText) {
  EXPECT_TRUE(SpotSignatures("", SmallConfig()).empty());
}

}  // namespace
}  // namespace adalsh
