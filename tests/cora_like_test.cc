#include "datagen/cora_like.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace adalsh {
namespace {

CoraLikeConfig SmallConfig() {
  CoraLikeConfig config;
  config.num_entities = 40;
  config.num_records = 400;
  config.seed = 11;
  return config;
}

TEST(CoraLikeTest, ShapeAndSchema) {
  GeneratedDataset generated = GenerateCoraLike(SmallConfig());
  EXPECT_EQ(generated.dataset.num_records(), 400u);
  EXPECT_EQ(generated.dataset.record(0).num_fields(), 3u);
  for (FieldId f = 0; f < 3; ++f) {
    EXPECT_TRUE(generated.dataset.record(0).field(f).is_token_set());
  }
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 40u);
}

TEST(CoraLikeTest, Deterministic) {
  GeneratedDataset a = GenerateCoraLike(SmallConfig());
  GeneratedDataset b = GenerateCoraLike(SmallConfig());
  ASSERT_EQ(a.dataset.num_records(), b.dataset.num_records());
  for (RecordId r = 0; r < a.dataset.num_records(); ++r) {
    EXPECT_EQ(a.dataset.record(r).field(0).tokens(),
              b.dataset.record(r).field(0).tokens());
  }
}

TEST(CoraLikeTest, RuleValidatesAgainstSchema) {
  GeneratedDataset generated = GenerateCoraLike(SmallConfig());
  EXPECT_TRUE(generated.rule.Validate(generated.dataset.record(0)).ok());
}

TEST(CoraLikeTest, WithinEntityPairsMostlyMatch) {
  GeneratedDataset generated = GenerateCoraLike(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  const std::vector<RecordId>& top = truth.cluster(0);
  ASSERT_GE(top.size(), 5u);
  int matches = 0, pairs = 0;
  for (size_t i = 0; i < top.size(); ++i) {
    for (size_t j = i + 1; j < top.size(); ++j) {
      ++pairs;
      matches += generated.rule.Matches(generated.dataset.record(top[i]),
                                        generated.dataset.record(top[j]));
    }
  }
  // The corruption model keeps most same-entity citation pairs above the
  // rule thresholds (transitivity closes the rest).
  EXPECT_GT(static_cast<double>(matches) / pairs, 0.7);
}

TEST(CoraLikeTest, CrossEntityPairsAlmostNeverMatch) {
  GeneratedDataset generated = GenerateCoraLike(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  Rng rng(3);
  int matches = 0;
  constexpr int kPairs = 500;
  for (int i = 0; i < kPairs; ++i) {
    RecordId a = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    RecordId b = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    if (truth.entity_of(a) == truth.entity_of(b)) continue;
    matches += generated.rule.Matches(generated.dataset.record(a),
                                      generated.dataset.record(b));
  }
  EXPECT_LE(matches, 2);
}

TEST(CoraLikeTest, CoraRuleShape) {
  MatchRule rule = CoraRule();
  ASSERT_EQ(rule.type(), MatchRule::Type::kAnd);
  ASSERT_EQ(rule.children().size(), 2u);
  EXPECT_EQ(rule.children()[0].type(), MatchRule::Type::kWeightedAverage);
  EXPECT_NEAR(rule.children()[0].threshold(), 0.3, 1e-12);
  EXPECT_EQ(rule.children()[1].type(), MatchRule::Type::kLeaf);
  EXPECT_NEAR(rule.children()[1].threshold(), 0.8, 1e-12);
}

TEST(CoraLikeTest, TopEntityIsSmallShareOfDataset) {
  // The Section 7.2 regime: the top entity is a few percent of the records.
  CoraLikeConfig config;  // defaults: 250 entities, 2000 records
  config.seed = 5;
  GeneratedDataset generated = GenerateCoraLike(config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  double share = static_cast<double>(truth.cluster(0).size()) /
                 generated.dataset.num_records();
  EXPECT_LT(share, 0.12);
  EXPECT_GT(share, 0.02);
}

}  // namespace
}  // namespace adalsh
