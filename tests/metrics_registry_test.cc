#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace adalsh {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.AddCounter("a");
  registry.AddCounter("a", 4);
  registry.AddCounter("b", 2);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("a"), 5u);
  EXPECT_EQ(snapshot.counters.at("b"), 2u);
}

TEST(MetricsRegistryTest, GaugesKeepLastValue) {
  MetricsRegistry registry;
  registry.SetGauge("g", 1.5);
  registry.SetGauge("g", -2.25);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g"), -2.25);
}

TEST(MetricsRegistryTest, DistributionsMergeExactly) {
  MetricsRegistry registry;
  for (int i = 1; i <= 10; ++i) {
    registry.RecordValue("d", static_cast<double>(i));
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const RunningStats& stats = snapshot.distributions.at("d");
  EXPECT_EQ(stats.count(), 10u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(MetricsRegistryTest, SnapshotIsCumulativeAcrossCalls) {
  MetricsRegistry registry;
  registry.AddCounter("a", 3);
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 3u);
  registry.AddCounter("a", 2);
  EXPECT_EQ(registry.Snapshot().counters.at("a"), 5u);
}

TEST(MetricsRegistryTest, IndependentRegistriesDoNotShareShards) {
  // The thread_local shard cache is keyed by registry id; a second registry
  // on the same thread (including one at a recycled address) must see only
  // its own updates.
  auto first = std::make_unique<MetricsRegistry>();
  first->AddCounter("a", 7);
  EXPECT_EQ(first->Snapshot().counters.at("a"), 7u);
  first.reset();
  MetricsRegistry second;
  second.AddCounter("a", 1);
  EXPECT_EQ(second.Snapshot().counters.at("a"), 1u);
}

// Exact aggregation under a thread pool: every worker adds a known amount,
// and the snapshot must equal the arithmetic total — no lost updates, no
// double counting — at 1, 2 and 8 threads.
void ExerciseAcrossThreads(int threads) {
  MetricsRegistry registry;
  constexpr size_t kItems = 10000;
  ThreadPool pool(threads);
  ParallelFor(&pool, kItems, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      registry.AddCounter("items");
      registry.AddCounter("weighted", i % 7);
      registry.RecordValue("value", static_cast<double>(i));
    }
  });
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("items"), kItems) << threads << " threads";
  uint64_t expected_weighted = 0;
  for (size_t i = 0; i < kItems; ++i) expected_weighted += i % 7;
  EXPECT_EQ(snapshot.counters.at("weighted"), expected_weighted);
  const RunningStats& value = snapshot.distributions.at("value");
  EXPECT_EQ(value.count(), kItems);
  EXPECT_DOUBLE_EQ(value.min(), 0.0);
  EXPECT_DOUBLE_EQ(value.max(), static_cast<double>(kItems - 1));
  EXPECT_NEAR(value.mean(), static_cast<double>(kItems - 1) / 2.0, 1e-9);
}

TEST(MetricsRegistryTest, ExactCountsAt1Thread) { ExerciseAcrossThreads(1); }
TEST(MetricsRegistryTest, ExactCountsAt2Threads) { ExerciseAcrossThreads(2); }
TEST(MetricsRegistryTest, ExactCountsAt8Threads) { ExerciseAcrossThreads(8); }

TEST(MetricsRegistryTest, ConcurrentSnapshotSeesConsistentTotals) {
  // Snapshot while writers are running: the result must be some prefix of
  // the writes (never more than written, never torn distributions).
  MetricsRegistry registry;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        registry.AddCounter("c");
        registry.RecordValue("v", 1.0);
      }
    });
  }
  MetricsSnapshot mid = registry.Snapshot();
  if (auto it = mid.counters.find("c"); it != mid.counters.end()) {
    EXPECT_LE(it->second, 4 * kPerThread);
  }
  for (std::thread& w : writers) w.join();
  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("c"), 4 * kPerThread);
  EXPECT_EQ(final_snapshot.distributions.at("v").count(), 4 * kPerThread);
}

}  // namespace
}  // namespace adalsh
