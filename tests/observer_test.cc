#include "obs/observer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "core/streaming_adaptive_lsh.h"
#include "test_util.h"

namespace adalsh {
namespace {

/// Records the full event sequence for golden checks against FilterStats.
class RecordingObserver : public Observer {
 public:
  struct Event {
    enum Kind { kRoundStart, kRoundEnd, kFunction, kPairwise } kind;
    size_t round = 0;  // kRoundStart/kRoundEnd only
  };

  void OnRoundStart(const RoundStartInfo& info) override {
    events.push_back({Event::kRoundStart, info.round});
    starts.push_back(info);
  }
  void OnRoundEnd(const RoundRecord& record) override {
    events.push_back({Event::kRoundEnd, record.round});
    ends.push_back(record);
  }
  void OnFunctionApplied(const FunctionApplyInfo& info) override {
    events.push_back({Event::kFunction});
    functions.push_back(info);
  }
  void OnPairwiseBatch(const PairwiseBatchInfo& info) override {
    events.push_back({Event::kPairwise});
    batches.push_back(info);
  }

  std::vector<Event> events;
  std::vector<RoundStartInfo> starts;
  std::vector<RoundRecord> ends;
  std::vector<FunctionApplyInfo> functions;
  std::vector<PairwiseBatchInfo> batches;
};

// The ordering contract of obs/observer.h: every round is a
// Start ... (Function|Pairwise)* ... End bracket, never interleaved.
void ExpectWellBracketed(const RecordingObserver& observer) {
  bool in_round = false;
  size_t current = 0;
  for (const auto& event : observer.events) {
    switch (event.kind) {
      case RecordingObserver::Event::kRoundStart:
        EXPECT_FALSE(in_round) << "nested OnRoundStart";
        in_round = true;
        current = event.round;
        break;
      case RecordingObserver::Event::kRoundEnd:
        EXPECT_TRUE(in_round) << "OnRoundEnd without start";
        EXPECT_EQ(event.round, current);
        in_round = false;
        break;
      case RecordingObserver::Event::kFunction:
      case RecordingObserver::Event::kPairwise:
        // Calibration probes may fire outside rounds; stage events from the
        // refinement loop are inside one.
        break;
    }
  }
  EXPECT_FALSE(in_round) << "unclosed round";
}

// The golden check: the observer's round sequence is exactly
// FilterStats::round_records.
void ExpectMatchesStats(const RecordingObserver& observer,
                        const FilterStats& stats) {
  EXPECT_EQ(stats.rounds, stats.round_records.size());
  ASSERT_EQ(observer.starts.size(), stats.rounds);
  ASSERT_EQ(observer.ends.size(), stats.rounds);
  for (size_t i = 0; i < stats.rounds; ++i) {
    const RoundRecord& expected = stats.round_records[i];
    EXPECT_EQ(expected.round, i + 1);
    EXPECT_EQ(observer.starts[i].round, expected.round);
    EXPECT_EQ(observer.starts[i].cluster_size, expected.cluster_size);
    const RoundRecord& seen = observer.ends[i];
    EXPECT_EQ(seen.round, expected.round);
    EXPECT_EQ(seen.action, expected.action);
    EXPECT_EQ(seen.function_index, expected.function_index);
    EXPECT_EQ(seen.cluster_size, expected.cluster_size);
    EXPECT_EQ(seen.hashes_computed, expected.hashes_computed);
    EXPECT_EQ(seen.pairwise_similarities, expected.pairwise_similarities);
    EXPECT_DOUBLE_EQ(seen.wall_seconds, expected.wall_seconds);
    EXPECT_DOUBLE_EQ(seen.modeled_cost, expected.modeled_cost);
  }
}

TEST(ObserverTest, AdaptiveLshSequenceMatchesStats) {
  GeneratedDataset generated =
      test::MakePlantedDataset({25, 15, 8, 3, 1, 1}, 21);
  RecordingObserver observer;
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 30;
  config.seed = 3;
  config.instrumentation.observer = &observer;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput output = adalsh.Run(3);

  ExpectWellBracketed(observer);
  ExpectMatchesStats(observer, output.stats);

  // The first round is the whole-dataset H_1 pass.
  ASSERT_FALSE(observer.starts.empty());
  EXPECT_EQ(observer.starts[0].producer, -1);
  EXPECT_EQ(observer.starts[0].cluster_size,
            generated.dataset.num_records());

  // Stage events account for all work: function hashes sum to the run's
  // hash total, pairwise batches to its similarity count (conservative jump
  // model: no sampling probes).
  uint64_t hashes = 0;
  for (const auto& info : observer.functions) hashes += info.hashes_computed;
  EXPECT_EQ(hashes, output.stats.hashes_computed);
  uint64_t sims = 0;
  for (const auto& info : observer.batches) sims += info.similarities;
  EXPECT_EQ(sims, output.stats.pairwise_similarities);
}

TEST(ObserverTest, LshBlockingSequenceMatchesStats) {
  GeneratedDataset generated = test::MakePlantedDataset({20, 10, 4, 1}, 23);
  RecordingObserver observer;
  LshBlockingConfig config;
  config.num_hashes = 320;
  config.seed = 3;
  config.instrumentation.observer = &observer;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(3);

  ExpectWellBracketed(observer);
  ExpectMatchesStats(observer, output.stats);

  // Round 1 hashes, every later round verifies with P.
  ASSERT_GE(observer.ends.size(), 1u);
  EXPECT_EQ(observer.ends[0].action, RoundAction::kHash);
  for (size_t i = 1; i < observer.ends.size(); ++i) {
    EXPECT_EQ(observer.ends[i].action, RoundAction::kPairwise);
  }
}

TEST(ObserverTest, PairsBaselineSequenceMatchesStats) {
  GeneratedDataset generated = test::MakePlantedDataset({12, 6, 2}, 25);
  RecordingObserver observer;
  Instrumentation instr;
  instr.observer = &observer;
  PairsBaseline pairs(generated.dataset, generated.rule, /*threads=*/1,
                      instr);
  FilterOutput output = pairs.Run(2);

  ExpectWellBracketed(observer);
  ExpectMatchesStats(observer, output.stats);
  ASSERT_EQ(observer.ends.size(), 1u);
  EXPECT_EQ(observer.ends[0].action, RoundAction::kPairwise);
  EXPECT_EQ(observer.ends[0].cluster_size, generated.dataset.num_records());
  ASSERT_EQ(observer.batches.size(), 1u);
  EXPECT_EQ(observer.batches[0].similarities,
            output.stats.pairwise_similarities);
}

TEST(ObserverTest, StreamingTopKSequenceMatchesStats) {
  GeneratedDataset generated = test::MakePlantedDataset({18, 9, 4, 1}, 27);
  RecordingObserver observer;
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 30;
  config.seed = 3;
  config.instrumentation.observer = &observer;
  StreamingAdaptiveLsh streaming(generated.dataset, generated.rule, config);
  for (RecordId r : generated.dataset.AllRecordIds()) streaming.Add(r);
  FilterOutput output = streaming.TopK(2);

  ExpectWellBracketed(observer);
  ExpectMatchesStats(observer, output.stats);
}

}  // namespace
}  // namespace adalsh
