#include "core/lsh_blocking.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adalsh {
namespace {

TEST(LshBlockingTest, FindsTopKClusters) {
  GeneratedDataset generated =
      test::MakePlantedDataset({25, 15, 8, 3, 1, 1}, 3);
  LshBlockingConfig config;
  config.num_hashes = 640;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(3);
  ASSERT_EQ(output.clusters.clusters.size(), 3u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 25u);
  EXPECT_EQ(output.clusters.clusters[1].size(), 15u);
  EXPECT_EQ(output.clusters.clusters[2].size(), 8u);
}

TEST(LshBlockingTest, VerifiedClustersAreExact) {
  GeneratedDataset generated = test::MakePlantedDataset({10, 10, 5}, 5);
  LshBlockingConfig config;
  config.num_hashes = 320;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(2);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(2), truth.TopKRecords(2));
  // Verification implies some pairwise work happened.
  EXPECT_GT(output.stats.pairwise_similarities, 0u);
}

TEST(LshBlockingTest, SchemeRespectsBudget) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 3}, 7);
  LshBlockingConfig config;
  config.num_hashes = 1280;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  EXPECT_LE(blocking.scheme().budget(), 1280);
  EXPECT_GE(blocking.scheme().budget(), 1280 - 64);  // nearly consumed
}

TEST(LshBlockingTest, AllRecordsHashedAtFullBudget) {
  // Unlike adaLSH, LSH-X pays the whole budget on every record.
  GeneratedDataset generated = test::MakePlantedDataset({8, 4, 2, 1, 1}, 9);
  LshBlockingConfig config;
  config.num_hashes = 320;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(2);
  EXPECT_EQ(output.stats.hashes_computed,
            static_cast<uint64_t>(blocking.scheme().budget()) *
                generated.dataset.num_records());
}

TEST(LshBlockingTest, NoPairwiseVariantSkipsVerification) {
  GeneratedDataset generated = test::MakePlantedDataset({12, 6, 3}, 11);
  LshBlockingConfig config;
  config.num_hashes = 320;
  config.apply_pairwise = false;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(2);
  EXPECT_EQ(output.stats.pairwise_similarities, 0u);
  EXPECT_EQ(output.clusters.clusters.size(), 2u);
}

TEST(LshBlockingTest, NoPairwiseLowBudgetMayMergeEntities) {
  // With P disabled and a large budget the stage-1 clusters match the
  // verified ones on this easy dataset.
  GeneratedDataset generated = test::MakePlantedDataset({10, 5, 2, 1}, 13);
  LshBlockingConfig np_config;
  np_config.num_hashes = 640;
  np_config.apply_pairwise = false;
  LshBlocking np(generated.dataset, generated.rule, np_config);
  FilterOutput np_output = np.Run(2);
  LshBlockingConfig verified_config;
  verified_config.num_hashes = 640;
  LshBlocking verified(generated.dataset, generated.rule, verified_config);
  FilterOutput verified_output = verified.Run(2);
  EXPECT_EQ(np_output.clusters.UnionOfTopClusters(2),
            verified_output.clusters.UnionOfTopClusters(2));
}

TEST(LshBlockingTest, DeterministicPerSeed) {
  GeneratedDataset generated = test::MakePlantedDataset({10, 5}, 15);
  LshBlockingConfig config;
  config.num_hashes = 160;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput a = blocking.Run(1);
  FilterOutput b = blocking.Run(1);
  EXPECT_EQ(a.clusters.UnionOfTopClusters(1), b.clusters.UnionOfTopClusters(1));
}

}  // namespace
}  // namespace adalsh
