#include "datagen/multimodal.h"

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "eval/metrics.h"

namespace adalsh {
namespace {

MultiModalConfig SmallConfig() {
  MultiModalConfig config;
  config.num_entities = 15;
  config.num_records = 150;
  config.seed = 7;
  return config;
}

TEST(MultiModalTest, ShapeAndSchema) {
  GeneratedDataset generated = GenerateMultiModal(SmallConfig());
  EXPECT_EQ(generated.dataset.num_records(), 150u);
  const Record& record = generated.dataset.record(0);
  ASSERT_EQ(record.num_fields(), 2u);
  EXPECT_TRUE(record.field(0).is_dense());
  EXPECT_TRUE(record.field(1).is_token_set());
  EXPECT_EQ(generated.rule.type(), MatchRule::Type::kOr);
}

TEST(MultiModalTest, Deterministic) {
  GeneratedDataset a = GenerateMultiModal(SmallConfig());
  GeneratedDataset b = GenerateMultiModal(SmallConfig());
  for (RecordId r = 0; r < a.dataset.num_records(); ++r) {
    EXPECT_EQ(a.dataset.record(r).field(1).tokens(),
              b.dataset.record(r).field(1).tokens());
  }
}

TEST(MultiModalTest, NeitherModalityAloneSuffices) {
  // Some within-entity pairs fail the photo leaf, some fail the fingerprint
  // leaf, but the OR rule holds for (almost) all of them.
  GeneratedDataset generated = GenerateMultiModal(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  MatchRule photo_only = MatchRule::Leaf(0, generated.rule.children()[0].threshold());
  MatchRule fp_only = MatchRule::Leaf(1, generated.rule.children()[1].threshold());
  const std::vector<RecordId>& top = truth.cluster(0);
  ASSERT_GE(top.size(), 8u);
  int photo_fail = 0, fp_fail = 0, or_match = 0, pairs = 0;
  for (size_t i = 0; i < top.size() && i < 15; ++i) {
    for (size_t j = i + 1; j < top.size() && j < 15; ++j) {
      const Record& a = generated.dataset.record(top[i]);
      const Record& b = generated.dataset.record(top[j]);
      photo_fail += !photo_only.Matches(a, b);
      fp_fail += !fp_only.Matches(a, b);
      or_match += generated.rule.Matches(a, b);
      ++pairs;
    }
  }
  EXPECT_GT(photo_fail, 0);
  EXPECT_GT(fp_fail, 0);
  EXPECT_GT(static_cast<double>(or_match) / pairs, 0.85);
}

TEST(MultiModalTest, CrossEntityPairsDoNotMatch) {
  GeneratedDataset generated = GenerateMultiModal(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  int matches = 0, pairs = 0;
  for (RecordId a = 0; a < 80; ++a) {
    for (RecordId b = a + 1; b < 80; ++b) {
      if (truth.entity_of(a) == truth.entity_of(b)) continue;
      matches += generated.rule.Matches(generated.dataset.record(a),
                                        generated.dataset.record(b));
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 100);
  EXPECT_LE(matches, pairs / 100);
}

TEST(MultiModalTest, LshBlockingHandlesOrRule) {
  // The OR budget split (Programs 7-10) also drives the one-shot baseline.
  GeneratedDataset generated = GenerateMultiModal(SmallConfig());
  LshBlockingConfig config;
  config.num_hashes = 640;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  ASSERT_EQ(blocking.scheme().groups.size(), 2u);  // one group per modality
  EXPECT_GE(blocking.scheme().groups[0].budget(), 1);
  EXPECT_GE(blocking.scheme().groups[1].budget(), 1);
  FilterOutput output = blocking.Run(3);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput exact = pairs.Run(3);
  EXPECT_GT(ComputeSetAccuracy(output.clusters.UnionOfTopClusters(3),
                               exact.clusters.UnionOfTopClusters(3))
                .f1,
            0.9);
}

TEST(MultiModalTest, AdaptiveLshHandlesOrRule) {
  // End-to-end through the OR hashing construction (Programs 7-10).
  GeneratedDataset generated = GenerateMultiModal(SmallConfig());
  AdaptiveLshConfig config;
  config.sequence.max_budget = 1280;
  config.calibration_samples = 20;
  config.seed = 3;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput adaptive = adalsh.Run(3);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput exact = pairs.Run(3);
  SetAccuracy vs_exact =
      ComputeSetAccuracy(adaptive.clusters.UnionOfTopClusters(3),
                         exact.clusters.UnionOfTopClusters(3));
  EXPECT_GT(vs_exact.f1, 0.9);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_GT(GoldAccuracy(adaptive.clusters, truth, 3).f1, 0.8);
}

}  // namespace
}  // namespace adalsh
