#include "image/histogram.h"

#include <numeric>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(HistogramTest, SizeIsBinsCubed) {
  Image image(4, 4);
  EXPECT_EQ(RgbHistogram(image, 2).size(), 8u);
  EXPECT_EQ(RgbHistogram(image, 4).size(), 64u);
  EXPECT_EQ(RgbHistogram(image, 8).size(), 512u);
}

TEST(HistogramTest, SumsToOne) {
  Image image(5, 7);
  image.set(0, 0, 255, 255, 255);
  image.set(1, 1, 7, 200, 99);
  std::vector<float> histogram = RgbHistogram(image, 4);
  double sum = std::accumulate(histogram.begin(), histogram.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(HistogramTest, BlackImageInFirstBin) {
  Image image(3, 3);
  std::vector<float> histogram = RgbHistogram(image, 4);
  EXPECT_FLOAT_EQ(histogram[0], 1.0f);
}

TEST(HistogramTest, WhiteImageInLastBin) {
  Image image(3, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) image.set(x, y, 255, 255, 255);
  }
  std::vector<float> histogram = RgbHistogram(image, 4);
  EXPECT_FLOAT_EQ(histogram.back(), 1.0f);
}

TEST(HistogramTest, BinIndexRMajor) {
  // A pure red pixel (255,0,0) with 2 bins lands in bin r=1,g=0,b=0 -> 4.
  Image image(1, 1);
  image.set(0, 0, 255, 0, 0);
  std::vector<float> histogram = RgbHistogram(image, 2);
  EXPECT_FLOAT_EQ(histogram[4], 1.0f);
}

TEST(HistogramTest, SizeInvariantForUniformContent) {
  Image small(4, 4), large(16, 16);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) small.set(x, y, 100, 100, 100);
  }
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) large.set(x, y, 100, 100, 100);
  }
  EXPECT_EQ(RgbHistogram(small, 4), RgbHistogram(large, 4));
}

}  // namespace
}  // namespace adalsh
