#include "datagen/extend.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

Dataset SmallDataset() {
  Dataset dataset("base");
  for (int e = 0; e < 3; ++e) {
    for (int r = 0; r <= e; ++r) {  // sizes 1, 2, 3
      std::vector<Field> fields;
      fields.push_back(Field::TokenSet({static_cast<uint64_t>(e * 10 + r)}));
      dataset.AddRecord(Record(std::move(fields)), e);
    }
  }
  return dataset;
}

TEST(ExtendTest, FactorOneIsCopy) {
  Dataset base = SmallDataset();
  Dataset copy = ExtendByResampling(base, 1, 99);
  EXPECT_EQ(copy.num_records(), base.num_records());
  EXPECT_EQ(copy.entity_assignment(), base.entity_assignment());
}

TEST(ExtendTest, FactorScalesRecordCount) {
  Dataset base = SmallDataset();
  EXPECT_EQ(ExtendByResampling(base, 2, 99).num_records(), 12u);
  EXPECT_EQ(ExtendByResampling(base, 4, 99).num_records(), 24u);
  EXPECT_EQ(ExtendByResampling(base, 8, 99).num_records(), 48u);
}

TEST(ExtendTest, PrefixIsBaseDataset) {
  Dataset base = SmallDataset();
  Dataset extended = ExtendByResampling(base, 2, 99);
  for (RecordId r = 0; r < base.num_records(); ++r) {
    EXPECT_EQ(extended.entity_assignment()[r], base.entity_assignment()[r]);
    EXPECT_EQ(extended.record(r).field(0).tokens(),
              base.record(r).field(0).tokens());
  }
}

TEST(ExtendTest, AddedRecordsAreCopiesOfBaseRecords) {
  Dataset base = SmallDataset();
  Dataset extended = ExtendByResampling(base, 3, 5);
  for (RecordId r = base.num_records(); r < extended.num_records(); ++r) {
    EntityId e = extended.entity_assignment()[r];
    // The copied record's token must belong to that entity's base records.
    uint64_t token = extended.record(r).field(0).tokens()[0];
    EXPECT_EQ(token / 10, e);
  }
}

TEST(ExtendTest, NameCarriesFactor) {
  Dataset base = SmallDataset();
  EXPECT_EQ(ExtendByResampling(base, 4, 1).name(), "base4x");
  EXPECT_EQ(ExtendByResampling(base, 1, 1).name(), "base");
}

TEST(ExtendTest, Deterministic) {
  Dataset base = SmallDataset();
  Dataset a = ExtendByResampling(base, 2, 7);
  Dataset b = ExtendByResampling(base, 2, 7);
  EXPECT_EQ(a.entity_assignment(), b.entity_assignment());
}

TEST(ExtendTest, UniformEntitySamplingFlattensSkew) {
  // With uniform entity picks, every entity gains ~the same record count.
  Dataset base = SmallDataset();
  Dataset extended = ExtendByResampling(base, 200, 13);
  std::vector<size_t> counts(3, 0);
  for (RecordId r = base.num_records(); r < extended.num_records(); ++r) {
    ++counts[extended.entity_assignment()[r]];
  }
  size_t total = extended.num_records() - base.num_records();
  for (size_t c : counts) {
    EXPECT_GT(c, total / 4);
    EXPECT_LT(c, total / 2);
  }
}

}  // namespace
}  // namespace adalsh
