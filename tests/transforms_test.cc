#include "image/transforms.h"

#include <gtest/gtest.h>

#include "distance/cosine.h"
#include "image/histogram.h"

namespace adalsh {
namespace {

Image MakeCheckerboard(int size) {
  Image image(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      uint8_t v = ((x / 4 + y / 4) % 2) ? 200 : 40;
      image.set(x, y, v, static_cast<uint8_t>(255 - v), 128);
    }
  }
  return image;
}

TEST(CropTest, ExtractsRegion) {
  Image image = MakeCheckerboard(16);
  Image crop = Crop(image, 2, 3, 5, 4);
  EXPECT_EQ(crop.width(), 5);
  EXPECT_EQ(crop.height(), 4);
  EXPECT_EQ(crop.at(0, 0, 0), image.at(2, 3, 0));
  EXPECT_EQ(crop.at(4, 3, 1), image.at(6, 6, 1));
}

TEST(CropDeathTest, OutOfBoundsAborts) {
  Image image = MakeCheckerboard(8);
  EXPECT_DEATH(Crop(image, 4, 4, 8, 8), "out of bounds");
}

TEST(ScaleTest, IdentityScaleKeepsSize) {
  Image image = MakeCheckerboard(16);
  Image scaled = ScaleBilinear(image, 16, 16);
  EXPECT_EQ(scaled.width(), 16);
  EXPECT_EQ(scaled.height(), 16);
}

TEST(ScaleTest, UniformImageStaysUniform) {
  Image image(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) image.set(x, y, 100, 150, 200);
  }
  Image scaled = ScaleBilinear(image, 13, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 13; ++x) {
      EXPECT_EQ(scaled.at(x, y, 0), 100);
      EXPECT_EQ(scaled.at(x, y, 1), 150);
      EXPECT_EQ(scaled.at(x, y, 2), 200);
    }
  }
}

TEST(RecenterTest, ShiftsContent) {
  Image image(4, 4);
  image.set(1, 1, 255, 0, 0);
  Image shifted = Recenter(image, 1, 2);
  EXPECT_EQ(shifted.at(2, 3, 0), 255);
}

TEST(RecenterTest, ZeroShiftIsIdentity) {
  Image image = MakeCheckerboard(8);
  Image shifted = Recenter(image, 0, 0);
  EXPECT_EQ(shifted.pixels(), image.pixels());
}

TEST(RandomTransformTest, MildTransformKeepsHistogramClose) {
  ImagePatternConfig pattern;
  Rng rng(3);
  Image original = GenerateRandomImage(pattern, &rng);
  RandomTransformConfig config;
  config.min_keep_fraction = 0.975;
  config.min_scale = 0.95;
  config.max_scale = 1.05;
  config.max_shift_fraction = 0.012;
  std::vector<float> h_orig = RgbHistogram(original, 4);
  double worst = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    Image copy = RandomTransform(original, config, &rng);
    double distance = CosineDistance(h_orig, RgbHistogram(copy, 4));
    worst = std::max(worst, distance);
  }
  // Mild transforms stay within a few degrees of the original.
  EXPECT_LT(NormalizedAngleToDegrees(worst), 6.0);
}

TEST(RandomTransformTest, Deterministic) {
  ImagePatternConfig pattern;
  Rng gen_rng(5);
  Image original = GenerateRandomImage(pattern, &gen_rng);
  RandomTransformConfig config;
  Rng a(9), b(9);
  Image ta = RandomTransform(original, config, &a);
  Image tb = RandomTransform(original, config, &b);
  EXPECT_EQ(ta.pixels(), tb.pixels());
}

}  // namespace
}  // namespace adalsh
