#include "util/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(SimpsonTest, IntegratesPolynomialExactly) {
  // Simpson is exact for cubics.
  auto cubic = [](double x) { return x * x * x - 2 * x + 1; };
  // Integral over [0,2]: x^4/4 - x^2 + x = 4 - 4 + 2 = 2.
  EXPECT_NEAR(SimpsonIntegrate(cubic, 0.0, 2.0, 4), 2.0, 1e-12);
}

TEST(SimpsonTest, IntegratesTranscendental) {
  EXPECT_NEAR(SimpsonIntegrate([](double x) { return std::sin(x); }, 0.0,
                               M_PI, 64),
              2.0, 1e-6);
}

TEST(SimpsonTest, OddIntervalCountRoundsUp) {
  // 3 intervals rounds to 4; result should still be correct.
  EXPECT_NEAR(SimpsonIntegrate([](double x) { return x; }, 0.0, 1.0, 3), 0.5,
              1e-12);
}

TEST(Simpson2DTest, SeparableProduct) {
  // Integral of x*y over unit square = 1/4.
  EXPECT_NEAR(SimpsonIntegrate2D([](double x, double y) { return x * y; },
                                 0.0, 1.0, 0.0, 1.0, 8),
              0.25, 1e-12);
}

TEST(Simpson2DTest, NonSeparable) {
  // Integral of (x + y)^2 over unit square = 7/6.
  EXPECT_NEAR(SimpsonIntegrate2D(
                  [](double x, double y) { return (x + y) * (x + y); }, 0.0,
                  1.0, 0.0, 1.0, 16),
              7.0 / 6.0, 1e-9);
}

TEST(PowIntTest, MatchesStdPow) {
  for (uint64_t e : {0ull, 1ull, 2ull, 7ull, 30ull, 140ull, 1000ull}) {
    EXPECT_NEAR(PowInt(0.9167, e), std::pow(0.9167, static_cast<double>(e)),
                1e-9)
        << "exponent " << e;
  }
}

TEST(PowIntTest, ZeroAndOneBases) {
  EXPECT_DOUBLE_EQ(PowInt(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(PowInt(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(PowInt(1.0, 1000000), 1.0);
}

TEST(PairCountTest, SmallValues) {
  EXPECT_EQ(PairCount(0), 0u);
  EXPECT_EQ(PairCount(1), 0u);
  EXPECT_EQ(PairCount(2), 1u);
  EXPECT_EQ(PairCount(5), 10u);
  EXPECT_EQ(PairCount(100000), 4999950000u);
}

TEST(FloorLog2Test, PowersAndBetween) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
}

}  // namespace
}  // namespace adalsh
