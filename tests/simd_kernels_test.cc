// Differential certification of the SIMD dispatch layer (docs/simd.md): on
// every supported level, the two hot kernels must return bit-identical
// results to the scalar reference — for randomized inputs and for the edge
// shapes that break naive vectorization (sizes off the vector width, zeros,
// denormals, empty sets). The scalar kernel is the semantic spec; the
// vector paths are certified against it, never against each other.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/simd.h"
#include "util/simd_kernels.h"

namespace adalsh {
namespace {

// Sizes chosen around the lane structure: empty, sub-lane, exactly one
// vector step, one off either side, multiple steps, and large-and-odd.
const size_t kDotSizes[] = {0,  1,  3,  7,  8,  15, 16, 17,
                            31, 32, 33, 64, 100, 257, 1024};
const size_t kTokenSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 333};

// Bits must match exactly; EXPECT_EQ on doubles treats -0.0 == 0.0 and
// NaN != NaN, so compare the representation.
void ExpectSameBits(double expected, double actual, const char* what,
                    SimdLevel level, size_t size) {
  uint64_t expected_bits, actual_bits;
  std::memcpy(&expected_bits, &expected, sizeof(expected_bits));
  std::memcpy(&actual_bits, &actual, sizeof(actual_bits));
  EXPECT_EQ(expected_bits, actual_bits)
      << what << " diverged on level " << SimdLevelName(level) << " at size "
      << size << ": scalar " << expected << " vs " << actual;
}

std::vector<float> RandomFloats(size_t size, Rng* rng, float scale) {
  std::vector<float> values(size);
  for (float& v : values) {
    v = static_cast<float>(rng->NextGaussian()) * scale;
  }
  return values;
}

TEST(SimdKernelsTest, DotProductMatchesScalarOnRandomVectors) {
  Rng rng(DeriveSeed(11, 0xd07));
  for (size_t size : kDotSizes) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<float> a = RandomFloats(size, &rng, 3.0f);
      std::vector<float> b = RandomFloats(size, &rng, 3.0f);
      double reference =
          simd::DotProductF32At(SimdLevel::kScalar, a.data(), b.data(), size);
      for (SimdLevel level : SupportedSimdLevels()) {
        ExpectSameBits(reference,
                       simd::DotProductF32At(level, a.data(), b.data(), size),
                       "dot", level, size);
      }
    }
  }
}

TEST(SimdKernelsTest, DotProductEdgeValues) {
  // Zero vectors, mixed signs with exact cancellations, denormal floats,
  // and magnitude spreads that make the accumulation order observable.
  const float denormal = std::numeric_limits<float>::denorm_min();
  const std::vector<std::vector<float>> patterns = {
      {},                                     // empty
      {0.0f},                                 // single zero
      {-0.0f, 0.0f, -0.0f},                   // signed zeros
      {denormal, -denormal, denormal * 7.0f}, // denormals
      {1e30f, 1.0f, -1e30f, 1.0f},            // catastrophic cancellation
      std::vector<float>(100, 1e-40f),        // a denormal row
  };
  for (const std::vector<float>& a : patterns) {
    for (const std::vector<float>& b : patterns) {
      if (a.size() != b.size()) continue;
      double reference = simd::DotProductF32At(SimdLevel::kScalar, a.data(),
                                               b.data(), a.size());
      for (SimdLevel level : SupportedSimdLevels()) {
        ExpectSameBits(
            reference,
            simd::DotProductF32At(level, a.data(), b.data(), a.size()),
            "dot-edge", level, a.size());
      }
    }
  }
}

TEST(SimdKernelsTest, DotProductIndependentOfAlignment) {
  // The kernels take unaligned pointers (record payloads are plain
  // std::vector storage); the result must not depend on where the row
  // starts.
  Rng rng(DeriveSeed(12, 0xa119));
  std::vector<float> a = RandomFloats(80, &rng, 2.0f);
  std::vector<float> b = RandomFloats(80, &rng, 2.0f);
  for (size_t offset = 0; offset < 9; ++offset) {
    const size_t size = 64;
    double reference = simd::DotProductF32At(
        SimdLevel::kScalar, a.data() + offset, b.data() + offset, size);
    for (SimdLevel level : SupportedSimdLevels()) {
      ExpectSameBits(reference,
                     simd::DotProductF32At(level, a.data() + offset,
                                           b.data() + offset, size),
                     "dot-offset", level, offset);
    }
  }
}

TEST(SimdKernelsTest, TwoRowDotMatchesTwoSingleRowCalls) {
  // The batched hyperplane kernel's contract: per-row canonical lane state,
  // so each output is bit-identical to an independent one-row call at the
  // same level — and through it to the scalar reference.
  Rng rng(DeriveSeed(14, 0xd072));
  for (size_t size : kDotSizes) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<float> a0 = RandomFloats(size, &rng, 3.0f);
      std::vector<float> a1 = RandomFloats(size, &rng, 3.0f);
      std::vector<float> b = RandomFloats(size, &rng, 3.0f);
      const double ref0 =
          simd::DotProductF32At(SimdLevel::kScalar, a0.data(), b.data(), size);
      const double ref1 =
          simd::DotProductF32At(SimdLevel::kScalar, a1.data(), b.data(), size);
      for (SimdLevel level : SupportedSimdLevels()) {
        double out0 = 0.0, out1 = 0.0;
        simd::DotProductF32x2At(level, a0.data(), a1.data(), b.data(), size,
                                &out0, &out1);
        ExpectSameBits(ref0, out0, "dot-x2-row0", level, size);
        ExpectSameBits(ref1, out1, "dot-x2-row1", level, size);
      }
    }
  }
}

TEST(SimdKernelsTest, TwoRowDotEdgeValues) {
  const float denormal = std::numeric_limits<float>::denorm_min();
  const std::vector<std::vector<float>> patterns = {
      {},
      {0.0f},
      {-0.0f, 0.0f, -0.0f},
      {denormal, -denormal, denormal * 7.0f},
      {1e30f, 1.0f, -1e30f, 1.0f},
      std::vector<float>(100, 1e-40f),
  };
  for (const std::vector<float>& a : patterns) {
    for (const std::vector<float>& b : patterns) {
      if (a.size() != b.size()) continue;
      const double ref0 = simd::DotProductF32At(SimdLevel::kScalar, a.data(),
                                                b.data(), a.size());
      const double ref1 = simd::DotProductF32At(SimdLevel::kScalar, b.data(),
                                                b.data(), b.size());
      for (SimdLevel level : SupportedSimdLevels()) {
        double out0 = 0.0, out1 = 0.0;
        simd::DotProductF32x2At(level, a.data(), b.data(), b.data(), a.size(),
                                &out0, &out1);
        ExpectSameBits(ref0, out0, "dot-x2-edge-row0", level, a.size());
        ExpectSameBits(ref1, out1, "dot-x2-edge-row1", level, a.size());
      }
    }
  }
}

TEST(SimdKernelsTest, MinHashMatchesScalarOnRandomTokenSets) {
  Rng rng(DeriveSeed(13, 0x3147));
  for (size_t size : kTokenSizes) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint64_t> tokens(size);
      for (uint64_t& t : tokens) t = rng.Next();
      const uint64_t seed = rng.Next();
      const uint64_t reference = simd::MinHashTokensAt(
          SimdLevel::kScalar, tokens.data(), size, seed);
      for (SimdLevel level : SupportedSimdLevels()) {
        EXPECT_EQ(reference,
                  simd::MinHashTokensAt(level, tokens.data(), size, seed))
            << "minhash diverged on level " << SimdLevelName(level)
            << " at size " << size;
      }
    }
  }
}

TEST(SimdKernelsTest, MinHashEdgeSets) {
  // Empty set sentinel, extreme token values, all-identical tokens.
  for (SimdLevel level : SupportedSimdLevels()) {
    EXPECT_EQ(simd::MinHashTokensAt(level, nullptr, 0, 42),
              std::numeric_limits<uint64_t>::max())
        << "empty-set sentinel on " << SimdLevelName(level);
  }
  const std::vector<std::vector<uint64_t>> patterns = {
      {0},
      {std::numeric_limits<uint64_t>::max()},
      {0, std::numeric_limits<uint64_t>::max(), 1, 0x8000000000000000ull},
      std::vector<uint64_t>(17, 0xdeadbeefdeadbeefull),
  };
  for (const std::vector<uint64_t>& tokens : patterns) {
    for (uint64_t seed : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
      const uint64_t reference = simd::MinHashTokensAt(
          SimdLevel::kScalar, tokens.data(), tokens.size(), seed);
      for (SimdLevel level : SupportedSimdLevels()) {
        EXPECT_EQ(reference, simd::MinHashTokensAt(level, tokens.data(),
                                                   tokens.size(), seed))
            << "minhash edge set on " << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelsTest, MinHashAgreesWithDirectSplitMix) {
  // The kernel's contract in terms of the primitive it vectorizes.
  std::vector<uint64_t> tokens = {5, 17, 99, 12345678901234567ull};
  const uint64_t seed = 0xfeed;
  uint64_t expected = std::numeric_limits<uint64_t>::max();
  for (uint64_t t : tokens) {
    expected = std::min(expected, SplitMix64(t ^ seed));
  }
  for (SimdLevel level : SupportedSimdLevels()) {
    EXPECT_EQ(expected, simd::MinHashTokensAt(level, tokens.data(),
                                              tokens.size(), seed));
  }
}

TEST(SimdDispatchTest, PinForcesBothKernels) {
  for (SimdLevel level : SupportedSimdLevels()) {
    int previous = SetSimdPin(static_cast<int>(level));
    EXPECT_EQ(simd::ActiveDotLevel(), level);
    EXPECT_EQ(simd::ActiveMinHashLevel(), level);
    SetSimdPin(previous);
  }
}

TEST(SimdDispatchTest, AutoResolvesToSupportedLevels) {
  int previous = SetSimdPin(kSimdLevelAuto);
  EXPECT_TRUE(SimdLevelSupported(simd::ActiveDotLevel()));
  EXPECT_TRUE(SimdLevelSupported(simd::ActiveMinHashLevel()));
  SetSimdPin(previous);
}

TEST(SimdDispatchTest, WorkerCountChangeReprobesToSupportedLevels) {
  // NotifyWorkerCount discards the probed verdicts when the count changes;
  // the next unpinned use must re-resolve to some supported level and keep
  // producing the identical results (bit-identity makes re-picks free).
  int previous = SetSimdPin(kSimdLevelAuto);
  Rng rng(DeriveSeed(15, 0x90b3));
  std::vector<float> a = RandomFloats(64, &rng, 2.0f);
  std::vector<float> b = RandomFloats(64, &rng, 2.0f);
  const double reference =
      simd::DotProductF32At(SimdLevel::kScalar, a.data(), b.data(), 64);
  for (int workers : {1, 8, 8, 2}) {  // repeat is a no-op, change re-probes
    simd::NotifyWorkerCount(workers);
    EXPECT_TRUE(SimdLevelSupported(simd::ActiveDotLevel()));
    EXPECT_TRUE(SimdLevelSupported(simd::ActiveMinHashLevel()));
    ExpectSameBits(reference, simd::DotProductF32(a.data(), b.data(), 64),
                   "dot-reprobe", simd::ActiveDotLevel(), 64);
  }
  SetSimdPin(previous);
}

TEST(SimdDispatchTest, ScalarAlwaysListedFirst) {
  std::vector<SimdLevel> levels = SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
}

TEST(SimdDispatchTest, ParsePinRoundTrips) {
  for (SimdLevel level : SupportedSimdLevels()) {
    StatusOr<int> parsed = ParseSimdPin(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, static_cast<int>(level));
  }
  StatusOr<int> auto_pin = ParseSimdPin("auto");
  ASSERT_TRUE(auto_pin.ok());
  EXPECT_EQ(*auto_pin, kSimdLevelAuto);
  StatusOr<int> native = ParseSimdPin("native");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(*native, static_cast<int>(DetectSimdLevel()));
  EXPECT_FALSE(ParseSimdPin("sse9").ok());
}

TEST(SimdDispatchTest, AlignedBufferGrowPreservesAndZeroFills) {
  AlignedFloatBuffer buffer;
  buffer.GrowTo(10);
  ASSERT_EQ(buffer.size(), 10u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % kSimdAlign, 0u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(buffer.data()[i], 0.0f);
    buffer.data()[i] = static_cast<float>(i + 1);
  }
  buffer.GrowTo(1000);  // forces a reallocation past the doubled capacity
  ASSERT_EQ(buffer.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % kSimdAlign, 0u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(buffer.data()[i], static_cast<float>(i + 1));
  }
  for (size_t i = 10; i < 1000; ++i) {
    EXPECT_EQ(buffer.data()[i], 0.0f) << "grown region not zero-filled at "
                                      << i;
  }
}

}  // namespace
}  // namespace adalsh
