#include "obs/trace_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace adalsh {
namespace {

// Minimal structural JSON validator: walks the document, checking balanced
// braces/brackets and string quoting outside of strings. Good enough to
// catch comma/nesting bugs in the exporter without a JSON library.
bool IsStructurallyValidJson(const std::string& doc) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(TraceRecorderTest, SpanRecordsWallAndArgs) {
  TraceRecorder recorder;
  {
    TraceRecorder::Span span(&recorder, "round", "round");
    span.AddArg("cluster_size", 42.0);
  }
  ASSERT_EQ(recorder.num_spans(), 1u);
  TraceRecorder::SpanRecord span = recorder.Spans()[0];
  EXPECT_EQ(span.name, "round");
  EXPECT_EQ(span.category, "round");
  EXPECT_GE(span.start_seconds, 0.0);
  EXPECT_GE(span.duration_seconds, 0.0);
  ASSERT_EQ(span.args.size(), 1u);
  EXPECT_EQ(span.args[0].first, "cluster_size");
  EXPECT_DOUBLE_EQ(span.args[0].second, 42.0);
}

TEST(TraceRecorderTest, NullRecorderIsNoOp) {
  TraceRecorder::Span span(nullptr, "round", "round");
  span.AddArg("ignored", 1.0);
  // Nothing to assert beyond "does not crash"; the null recorder contract is
  // what lets call sites skip branching.
}

TEST(TraceRecorderTest, ExportIsWellFormedJson) {
  TraceRecorder recorder;
  {
    TraceRecorder::Span outer(&recorder, "round", "round");
    TraceRecorder::Span inner(&recorder, "hash_pass", "hash");
    inner.AddArg("hashes", 128.0);
    // Names with JSON-hostile characters must be escaped by the exporter.
    TraceRecorder::Span hostile(&recorder, "we\"ird\\name", "cat");
  }
  std::string doc = recorder.ToChromeTraceJson();
  EXPECT_TRUE(IsStructurallyValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("thread_name"), std::string::npos);
  EXPECT_NE(doc.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TraceRecorderTest, NestedSpansAreMonotonicallyContained) {
  // RAII spans on one thread close inner-before-outer, so in export order
  // (sorted by start) each later span on the same lane either nests inside
  // or starts after the earlier one — never partially overlaps.
  TraceRecorder recorder;
  {
    TraceRecorder::Span round(&recorder, "round", "round");
    { TraceRecorder::Span hash(&recorder, "hash_pass", "hash"); }
    { TraceRecorder::Span sweep(&recorder, "pairwise_sweep", "pairwise"); }
  }
  std::vector<TraceRecorder::SpanRecord> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 3u);
  const auto& round = spans[2];  // destroyed last, recorded last
  EXPECT_EQ(round.name, "round");
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_GE(spans[i].start_seconds, round.start_seconds);
    EXPECT_LE(spans[i].start_seconds + spans[i].duration_seconds,
              round.start_seconds + round.duration_seconds + 1e-9);
  }
  // The two inner spans are disjoint and in order.
  EXPECT_LE(spans[0].start_seconds + spans[0].duration_seconds,
            spans[1].start_seconds + 1e-9);
}

TEST(TraceRecorderTest, ParallelForChunksGetWorkerLanes) {
  TraceRecorder recorder;
  {
    ScopedParallelForTrace scope(&recorder);
    ThreadPool pool(2);
    ParallelFor(&pool, 1000, [](size_t begin, size_t end) {
      volatile double sink = 0.0;
      for (size_t i = begin; i < end; ++i) sink = sink + 1e-9;
    });
  }
  std::vector<TraceRecorder::SpanRecord> spans = recorder.Spans();
  ASSERT_FALSE(spans.empty());
  size_t covered = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.name, "parallel_chunk");
    ASSERT_EQ(span.args.size(), 2u);
    covered += static_cast<size_t>(span.args[1].second - span.args[0].second);
  }
  EXPECT_EQ(covered, 1000u);  // chunks partition the range exactly
  // The exported JSON carries a thread_name metadata record per lane.
  std::string doc = recorder.ToChromeTraceJson();
  EXPECT_TRUE(IsStructurallyValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
}

TEST(TraceRecorderTest, ConcurrentAddSpanIsSafe) {
  TraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 250; ++i) {
        TraceRecorder::Span span(&recorder, "span", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.num_spans(), 1000u);
}

}  // namespace
}  // namespace adalsh
