#include "util/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

/// Builds argv from literals (argv[0] is the program name).
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "test_binary");
    for (std::string& s : storage_) pointers_.push_back(s.data());
  }
  int argc() { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(FlagsTest, EqualsForm) {
  ArgvBuilder args({"--k=10", "--threshold=0.4"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("k", 0), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("threshold", 0.0), 0.4);
  flags.CheckNoUnusedFlags();
}

TEST(FlagsTest, SpaceForm) {
  ArgvBuilder args({"--scale", "4"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("scale", 1), 4);
}

TEST(FlagsTest, BareBooleanFlag) {
  ArgvBuilder args({"--quick"});
  Flags flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.GetBool("quick", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  ArgvBuilder args({});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetInt("k", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("quick", false));
  EXPECT_EQ(flags.GetString("name", "default"), "default");
}

TEST(FlagsTest, IntList) {
  ArgvBuilder args({"--ks=2,5,10,20"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetIntList("ks", {}),
            (std::vector<int64_t>{2, 5, 10, 20}));
}

TEST(FlagsTest, DoubleList) {
  ArgvBuilder args({"--thresholds=0.3,0.4,0.5"});
  Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetDoubleList("thresholds", {}),
            (std::vector<double>{0.3, 0.4, 0.5}));
}

TEST(FlagsDeathTest, UnusedFlagAborts) {
  ArgvBuilder args({"--typo=3"});
  Flags flags(args.argc(), args.argv());
  EXPECT_DEATH(flags.CheckNoUnusedFlags(), "unknown flag --typo");
}

TEST(FlagsDeathTest, NonNumericIntAborts) {
  ArgvBuilder args({"--k=abc"});
  Flags flags(args.argc(), args.argv());
  EXPECT_DEATH(flags.GetInt("k", 0), "not an integer");
}

TEST(FlagsDeathTest, PositionalArgumentAborts) {
  ArgvBuilder args({"positional"});
  EXPECT_DEATH(Flags(args.argc(), args.argv()), "positional");
}

}  // namespace
}  // namespace adalsh
