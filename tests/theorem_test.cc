// Brute-force verification of the paper's theoretical claims on small
// instances:
//   * Theorem 1: among all cluster-selection orders obeying the
//     family-of-algorithms rules (no jump-ahead, no early termination),
//     Largest-First achieves the minimum Definition-3 cost.
//   * The Section 5.1 optimizer returns the (near-)minimal-objective
//     feasible (w, z)-scheme, verified by exhaustive enumeration.

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheme_optimizer.h"
#include "util/check.h"
#include "util/numeric.h"

namespace adalsh {
namespace {

// ---------------------------------------------------------------------------
// A tiny abstract execution instance (Appendix D.1's notion): every cluster
// is a node in a split tree; applying the next function splits it into its
// children, identically for every algorithm. Definition 3 costs.
// ---------------------------------------------------------------------------

struct AbstractCluster {
  size_t size = 0;
  int level = 0;  // sequence index of the function that produced it
  bool final_by_p = false;
  std::vector<int> children;  // indices into the instance's node pool
};

struct AbstractInstance {
  std::vector<AbstractCluster> nodes;
  std::vector<int> roots;            // clusters after H_1
  std::vector<double> cost;          // cost_i per record for H_i
  double cost_p = 1.0;               // per pairwise similarity
  int last_level = 0;                // index of H_L
  int k = 1;

  bool JumpToP(const AbstractCluster& c) const {
    double upgrade = (cost[c.level + 1] - cost[c.level]) *
                     static_cast<double>(c.size);
    return upgrade >= cost_p * static_cast<double>(PairCount(c.size));
  }

  bool IsFinal(const AbstractCluster& c) const {
    return c.final_by_p || c.level == last_level;
  }
};

/// Exhaustive minimum cost over all selection orders; also returns the cost
/// Largest-First incurs. State = multiset of live cluster indices (as a
/// sorted vector, memoized).
class OrderSearch {
 public:
  explicit OrderSearch(const AbstractInstance& instance)
      : instance_(instance) {}

  double MinCost() { return Search(Canonical(instance_.roots)); }

  double LargestFirstCost() {
    std::vector<int> live = instance_.roots;
    double total = 0.0;
    for (;;) {
      if (Terminated(live)) return total;
      // Pick the largest non-final cluster (finals are set aside, exactly as
      // Algorithm 1's finals array). Size ties are not covered by the
      // theorem's proof — equal-size clusters at different sequence levels
      // genuinely differ in remaining cost — so ties break toward the
      // further-advanced cluster (less residual work), mirroring what an
      // implementation gets from processing newer fragments first.
      int pick = -1;
      for (size_t i = 0; i < live.size(); ++i) {
        const AbstractCluster& c = instance_.nodes[live[i]];
        if (instance_.IsFinal(c)) continue;
        if (pick < 0) {
          pick = static_cast<int>(i);
          continue;
        }
        const AbstractCluster& best = instance_.nodes[live[pick]];
        if (c.size > best.size ||
            (c.size == best.size && c.level > best.level)) {
          pick = static_cast<int>(i);
        }
      }
      ADALSH_CHECK_GE(pick, 0);
      total += Expand(&live, pick);
    }
  }

 private:
  /// Whether the k largest live clusters are all final. Size ties resolve in
  /// favor of finals (popping order under ties is arbitrary in Algorithm 1;
  /// both searches must use the same convention): terminated when at least k
  /// finals exist and no non-final is strictly larger than the k-th final.
  bool Terminated(const std::vector<int>& live) const {
    std::vector<size_t> final_sizes;
    size_t max_nonfinal = 0;
    for (int index : live) {
      const AbstractCluster& c = instance_.nodes[index];
      if (instance_.IsFinal(c)) {
        final_sizes.push_back(c.size);
      } else {
        max_nonfinal = std::max(max_nonfinal, c.size);
      }
    }
    size_t k = static_cast<size_t>(instance_.k);
    if (final_sizes.size() + (max_nonfinal > 0 ? 1 : 0) < k) {
      // Fewer clusters than k can ever exist: terminated when none pending.
      return max_nonfinal == 0;
    }
    if (final_sizes.size() < k) return false;
    std::nth_element(final_sizes.begin(), final_sizes.begin() + (k - 1),
                     final_sizes.end(), std::greater<size_t>());
    return final_sizes[k - 1] >= max_nonfinal;
  }

  /// Processes live[pick]; returns the step cost and splices in children.
  double Expand(std::vector<int>* live, int pick) const {
    int index = (*live)[pick];
    const AbstractCluster& c = instance_.nodes[index];
    (*live)[pick] = live->back();
    live->pop_back();
    double step;
    if (instance_.JumpToP(c)) {
      step = instance_.cost_p * static_cast<double>(PairCount(c.size));
      // P resolves the cluster exactly: model its outcome as the leaves of
      // the split subtree, all final.
      CollectLeaves(index, live);
      return step;
    }
    step = (instance_.cost[c.level + 1] - instance_.cost[c.level]) *
           static_cast<double>(c.size);
    for (int child : c.children) live->push_back(child);
    return step;
  }

  /// P's outcome: the fully split leaves under `index` — the exact
  /// clustering, identical for every algorithm (childless nodes sit at the
  /// terminal level, so IsFinal holds for them).
  void CollectLeaves(int index, std::vector<int>* live) const {
    const AbstractCluster& c = instance_.nodes[index];
    if (c.children.empty()) {
      live->push_back(index);
      return;
    }
    for (int child : c.children) CollectLeaves(child, live);
  }

  std::vector<int> Canonical(std::vector<int> live) const {
    std::sort(live.begin(), live.end());
    return live;
  }

  double Search(const std::vector<int>& live) {
    auto memo = memo_.find(live);
    if (memo != memo_.end()) return memo->second;
    if (Terminated(live)) {
      memo_[live] = 0.0;
      return 0.0;
    }
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < live.size(); ++i) {
      if (instance_.IsFinal(instance_.nodes[live[i]])) continue;
      std::vector<int> next = live;
      double step = Expand(&next, static_cast<int>(i));
      best = std::min(best, step + Search(Canonical(next)));
    }
    // If every live cluster is final but Terminated() was false, the k
    // largest include a non-final — impossible when all are final.
    ADALSH_CHECK(best < std::numeric_limits<double>::infinity());
    memo_[live] = best;
    return best;
  }

  const AbstractInstance& instance_;
  std::map<std::vector<int>, double> memo_;
};

/// Builds a 3-level instance: H_1 yields `roots` clusters; each splits per
/// `splits` at H_2; H_3 is terminal (everything separates into leaves of
/// size 1 at the last level unless resolved by P first).
AbstractInstance MakeInstance(const std::vector<size_t>& root_sizes, int k,
                              double cost_p) {
  AbstractInstance instance;
  instance.cost = {1.0, 3.0, 9.0};  // cost_1 < cost_2 < cost_3 per record
  instance.cost_p = cost_p;
  instance.last_level = 2;
  instance.k = k;
  for (size_t size : root_sizes) {
    // Level-1 cluster of `size` splits at level 2 into halves, which split
    // at level 3 into a (size/2) core and singletons.
    AbstractCluster root;
    root.size = size;
    root.level = 0;
    int root_index = static_cast<int>(instance.nodes.size());
    instance.nodes.push_back(root);
    size_t half = size / 2;
    std::vector<size_t> level2 = half > 0 && half < size
                                     ? std::vector<size_t>{half, size - half}
                                     : std::vector<size_t>{size};
    for (size_t l2 : level2) {
      AbstractCluster mid;
      mid.size = l2;
      mid.level = 1;
      int mid_index = static_cast<int>(instance.nodes.size());
      instance.nodes.push_back(mid);
      instance.nodes[root_index].children.push_back(mid_index);
      // Level 3: one core cluster (terminal).
      AbstractCluster leaf;
      leaf.size = l2;
      leaf.level = 2;
      int leaf_index = static_cast<int>(instance.nodes.size());
      instance.nodes.push_back(leaf);
      instance.nodes[mid_index].children.push_back(leaf_index);
    }
    instance.roots.push_back(root_index);
  }
  return instance;
}

class Theorem1Sweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem1Sweep, LargestFirstMatchesBruteForceOptimum) {
  auto [k, cost_p] = GetParam();
  AbstractInstance instance = MakeInstance({9, 6, 4, 2}, k, cost_p);
  OrderSearch search(instance);
  double brute = search.MinCost();
  double largest_first = search.LargestFirstCost();
  EXPECT_NEAR(largest_first, brute, 1e-9)
      << "k=" << k << " cost_p=" << cost_p;
}

INSTANTIATE_TEST_SUITE_P(
    Params, Theorem1Sweep,
    ::testing::Values(std::make_tuple(1, 0.5), std::make_tuple(1, 5.0),
                      std::make_tuple(2, 0.5), std::make_tuple(2, 2.0),
                      std::make_tuple(3, 1.0)));

// ---------------------------------------------------------------------------
// Optimizer vs exhaustive enumeration for small budgets.
// ---------------------------------------------------------------------------

class OptimizerBruteForceSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerBruteForceSweep, NearOptimalObjective) {
  int budget = GetParam();
  OptimizerConfig config;
  CollisionModel p = LinearCollisionModel();
  for (double threshold : {0.1, 0.3, 0.5}) {
    // Brute force over every w.
    double best_objective = std::numeric_limits<double>::infinity();
    bool any_feasible = false;
    for (int w = 1; w <= budget; ++w) {
      int z = budget / w;
      int rem = budget - w * z;
      double prob_at_thr =
          SchemeCollisionProbabilityWithRemainder(p, threshold, w, z, rem);
      if (prob_at_thr < 1.0 - config.epsilon) continue;
      any_feasible = true;
      double objective = SimpsonIntegrate(
          [&](double x) {
            return SchemeCollisionProbabilityWithRemainder(p, x, w, z, rem);
          },
          0.0, 1.0, config.final_intervals);
      best_objective = std::min(best_objective, objective);
    }
    OptimizerUnit unit;
    unit.p = p;
    unit.threshold = threshold;
    WzScheme scheme = OptimizeSingleScheme(unit, budget, config);
    if (!any_feasible) {
      EXPECT_FALSE(scheme.constraint_met);
      continue;
    }
    ASSERT_TRUE(scheme.constraint_met) << "thr " << threshold;
    // Within 2% of the exhaustive optimum (the search integrates coarsely).
    EXPECT_LE(scheme.objective, best_objective * 1.02 + 1e-6)
        << "budget " << budget << " thr " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, OptimizerBruteForceSweep,
                         ::testing::Values(10, 20, 33, 64, 100));

}  // namespace
}  // namespace adalsh
