#include "eval/recovery.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace adalsh {
namespace {

// Entities: 0 -> {0,1,2,3}, 1 -> {4,5,6}, 2 -> {7,8}, 3 -> {9}.
GroundTruth MakeTruth() {
  return GroundTruth({0, 0, 0, 0, 1, 1, 1, 2, 2, 3});
}

TEST(RecoveryTest, PullsBackMissingRecordsOfTouchedEntities) {
  GroundTruth truth = MakeTruth();
  // Output has only part of entity 0 and part of entity 1.
  Clustering recovered = PerfectRecovery({0, 1, 4}, truth);
  ASSERT_EQ(recovered.clusters.size(), 2u);
  EXPECT_EQ(recovered.clusters[0], (std::vector<RecordId>{0, 1, 2, 3}));
  EXPECT_EQ(recovered.clusters[1], (std::vector<RecordId>{4, 5, 6}));
}

TEST(RecoveryTest, UntouchedEntitiesAreUnrecoverable) {
  GroundTruth truth = MakeTruth();
  // Entity 2 has no record in the output: it cannot be recovered.
  Clustering recovered = PerfectRecovery({0, 9}, truth);
  ASSERT_EQ(recovered.clusters.size(), 2u);
  EXPECT_EQ(recovered.clusters[0].size(), 4u);  // entity 0
  EXPECT_EQ(recovered.clusters[1], (std::vector<RecordId>{9}));
}

TEST(RecoveryTest, EmptyOutput) {
  GroundTruth truth = MakeTruth();
  Clustering recovered = PerfectRecovery({}, truth);
  EXPECT_TRUE(recovered.clusters.empty());
}

TEST(RecoveryTest, RecoveryBoostsAccuracyMetrics) {
  GroundTruth truth = MakeTruth();
  // A lossy filtering output for k = 2: half of each top entity.
  std::vector<RecordId> output = {0, 1, 4};
  Clustering raw;
  raw.clusters = {{0, 1}, {4}};
  RankedAccuracy before = ComputeRankedAccuracy(raw, truth, 2);
  Clustering recovered = PerfectRecovery(output, truth);
  RankedAccuracy after = ComputeRankedAccuracy(recovered, truth, 2);
  EXPECT_GT(after.mar, before.mar);
  EXPECT_DOUBLE_EQ(after.map, 1.0);
  EXPECT_DOUBLE_EQ(after.mar, 1.0);
}

TEST(RunRecoveryProcessTest, PullsBackMatchingRecords) {
  // Planted dataset; filtering output holds only part of the top cluster.
  GeneratedDataset generated = test::MakePlantedDataset({8, 4}, 3);
  Clustering filtered;
  filtered.clusters = {{0, 1, 2, 3}};  // half of entity 0
  RecoveryResult result =
      RunRecoveryProcess(generated.dataset, generated.rule, filtered);
  // All 8 entity-0 records recovered; entity 1 untouched (no cluster seed).
  ASSERT_EQ(result.clusters.clusters.size(), 1u);
  EXPECT_EQ(result.clusters.clusters[0],
            (std::vector<RecordId>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(result.recovered_records, 4u);
  EXPECT_GT(result.similarities, 0u);
}

TEST(RunRecoveryProcessTest, AssignsToHighestRankedMatchingCluster) {
  GeneratedDataset generated = test::MakePlantedDataset({6, 6}, 5);
  Clustering filtered;
  filtered.clusters = {{0, 1, 2}, {6, 7, 8}};
  RecoveryResult result =
      RunRecoveryProcess(generated.dataset, generated.rule, filtered);
  // Records 3..5 join the first cluster, 9..11 the second.
  ASSERT_EQ(result.clusters.clusters.size(), 2u);
  EXPECT_EQ(result.clusters.clusters[0].size(), 6u);
  EXPECT_EQ(result.clusters.clusters[1].size(), 6u);
  EXPECT_EQ(result.recovered_records, 6u);
}

TEST(RunRecoveryProcessTest, CostBoundedByBenchmarkFormula) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 5, 5}, 7);
  Clustering filtered;
  filtered.clusters = {{0, 1, 2, 3, 4}};
  RecoveryResult result =
      RunRecoveryProcess(generated.dataset, generated.rule, filtered);
  // Benchmark recovery compares |O| x (|R| - |O|) pairs at most.
  EXPECT_LE(result.similarities, 5u * 10u);
}

TEST(RunRecoveryProcessTest, NoExcludedRecordsIsNoOp) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 9);
  Clustering filtered;
  filtered.clusters = {{0, 1, 2}};
  RecoveryResult result =
      RunRecoveryProcess(generated.dataset, generated.rule, filtered);
  EXPECT_EQ(result.recovered_records, 0u);
  EXPECT_EQ(result.similarities, 0u);
}

TEST(RecoveryTest, RankedBySizeDescending) {
  GroundTruth truth = MakeTruth();
  Clustering recovered = PerfectRecovery({9, 7, 0}, truth);
  ASSERT_EQ(recovered.clusters.size(), 3u);
  EXPECT_GE(recovered.clusters[0].size(), recovered.clusters[1].size());
  EXPECT_GE(recovered.clusters[1].size(), recovered.clusters[2].size());
}

}  // namespace
}  // namespace adalsh
