#include "core/streaming_adaptive_lsh.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "test_util.h"
#include "util/run_controller.h"

namespace adalsh {
namespace {

AdaptiveLshConfig SmallConfig() {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 20;
  config.seed = 3;
  return config;
}

TEST(StreamingTest, AllAtOnceMatchesGroundTruth) {
  GeneratedDataset generated =
      test::MakePlantedDataset({20, 12, 7, 3, 1, 1}, 5);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  for (RecordId r = 0; r < generated.dataset.num_records(); ++r) {
    stream.Add(r);
  }
  EXPECT_EQ(stream.num_added(), generated.dataset.num_records());
  FilterOutput output = stream.TopK(3);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(3), truth.TopKRecords(3));
}

TEST(StreamingTest, TopKReflectsArrivalsSoFar) {
  GeneratedDataset generated = test::MakePlantedDataset({16, 8, 4}, 7);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  // Add the first half of every cluster (record ids are contiguous per
  // entity: 0..15, 16..23, 24..27).
  for (RecordId r : {0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 24, 25}) {
    stream.Add(r);
  }
  FilterOutput early = stream.TopK(2);
  EXPECT_EQ(early.clusters.clusters[0].size(), 8u);
  EXPECT_EQ(early.clusters.clusters[1].size(), 4u);
  // Stream the rest; the clusters grow accordingly.
  for (RecordId r : {8, 9, 10, 11, 12, 13, 14, 15, 20, 21, 22, 23, 26, 27}) {
    stream.Add(r);
  }
  FilterOutput late = stream.TopK(2);
  EXPECT_EQ(late.clusters.clusters[0].size(), 16u);
  EXPECT_EQ(late.clusters.clusters[1].size(), 8u);
}

TEST(StreamingTest, NewArrivalsReopenVerifiedClusters) {
  GeneratedDataset generated = test::MakePlantedDataset({10, 6, 2}, 9);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  for (RecordId r = 0; r < 16; ++r) stream.Add(r);  // clusters 0 and 1
  FilterOutput before = stream.TopK(2);
  EXPECT_EQ(before.clusters.clusters[0].size(), 10u);
  stream.Add(16);  // a record of the third (smallest) entity
  stream.Add(17);
  FilterOutput after = stream.TopK(3);
  EXPECT_EQ(after.clusters.clusters.size(), 3u);
  EXPECT_EQ(after.clusters.clusters[2].size(), 2u);
}

TEST(StreamingTest, SecondTopKReusesVerification) {
  GeneratedDataset generated = test::MakePlantedDataset({15, 9, 4, 1, 1}, 11);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  for (RecordId r = 0; r < generated.dataset.num_records(); ++r) {
    stream.Add(r);
  }
  FilterOutput first = stream.TopK(2);
  FilterOutput second = stream.TopK(2);
  // Identical results, and the second call does (almost) no new hash work.
  EXPECT_EQ(first.clusters.UnionOfTopClusters(2),
            second.clusters.UnionOfTopClusters(2));
  EXPECT_EQ(second.stats.hashes_computed, 0u);
  EXPECT_EQ(second.stats.pairwise_similarities, 0u);
}

TEST(StreamingTest, ArrivalOrderInvariantResult) {
  GeneratedDataset generated = test::MakePlantedDataset({12, 6, 3, 1}, 13);
  AdaptiveLshConfig config = SmallConfig();
  StreamingAdaptiveLsh forward(generated.dataset, generated.rule, config);
  StreamingAdaptiveLsh backward(generated.dataset, generated.rule, config);
  size_t n = generated.dataset.num_records();
  for (RecordId r = 0; r < n; ++r) forward.Add(r);
  for (RecordId r = 0; r < n; ++r) backward.Add(static_cast<RecordId>(n - 1 - r));
  EXPECT_EQ(forward.TopK(2).clusters.UnionOfTopClusters(2),
            backward.TopK(2).clusters.UnionOfTopClusters(2));
}

TEST(StreamingTest, ExtendIngestsBatchLikeAddLoop) {
  GeneratedDataset generated = test::MakePlantedDataset({14, 8, 5, 2}, 19);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  std::vector<RecordId> ids(generated.dataset.num_records());
  std::iota(ids.begin(), ids.end(), 0u);
  Status status = stream.Extend(ids);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stream.num_added(), ids.size());
  FilterOutput output = stream.TopK(2);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(2), truth.TopKRecords(2));
}

TEST(StreamingTest, ExtendValidatesTheWholeBatchBeforeIngesting) {
  GeneratedDataset generated = test::MakePlantedDataset({6, 3}, 21);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  const RecordId beyond =
      static_cast<RecordId>(generated.dataset.num_records());
  // A bad id anywhere in the batch rejects the batch with nothing ingested —
  // even the valid ids that precede it.
  std::vector<RecordId> out_of_range = {0, 1, beyond};
  Status status = stream.Extend(out_of_range);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.num_added(), 0u);

  std::vector<RecordId> duplicated = {0, 1, 1};
  status = stream.Extend(duplicated);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.num_added(), 0u);

  stream.Add(2);
  std::vector<RecordId> already_added = {0, 2};
  status = stream.Extend(already_added);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.num_added(), 1u);
}

TEST(StreamingTest, ExtendAfterStickyCancelReturnsFailedPrecondition) {
  GeneratedDataset generated = test::MakePlantedDataset({6, 3}, 23);
  AdaptiveLshConfig config = SmallConfig();
  RunController controller;
  config.controller = &controller;
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule, config);
  std::vector<RecordId> first = {0, 1, 2};
  ASSERT_TRUE(stream.Extend(first).ok());

  controller.Cancel();
  // Cancel() is sticky across Arm(); an extend must not race it, and the
  // failure is reported as a Status instead of aborting the process.
  std::vector<RecordId> second = {3, 4};
  Status status = stream.Extend(second);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.num_added(), 3u);
}

TEST(StreamingDeathTest, DoubleAddAborts) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 15);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  stream.Add(0);
  EXPECT_DEATH(stream.Add(0), "added twice");
}

TEST(StreamingDeathTest, TopKBeforeAddAborts) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 17);
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              SmallConfig());
  EXPECT_DEATH(stream.TopK(1), "before any Add");
}

}  // namespace
}  // namespace adalsh
