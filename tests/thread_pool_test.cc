#include "util/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
  // Destroying an idle pool must not hang — reaching here is the assertion.
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::promise<int> result;
  pool.Submit([&result] { result.set_value(41 + 1); });
  EXPECT_EQ(result.get_future().get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue empties
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(&pool, n, [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads, n=" << n;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 1000,
                  [](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  // The pool is still usable after an exception: every index covered again.
  std::atomic<size_t> covered{0};
  ParallelFor(&pool, 100, [&](size_t begin, size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A ParallelFor body that itself calls ParallelFor on the same pool would
  // deadlock if the inner call submitted and waited (workers waiting on
  // workers). The guard runs nested calls inline instead.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, 8, [&](size_t begin, size_t end) {
    for (size_t outer = begin; outer < end; ++outer) {
      ParallelFor(&pool, 8, [&](size_t inner_begin, size_t inner_end) {
        for (size_t inner = inner_begin; inner < inner_end; ++inner) {
          hits[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, InsideWorkerReflectsContext) {
  EXPECT_FALSE(ThreadPool::InsideWorker());
  ThreadPool pool(1);
  std::promise<bool> inside;
  pool.Submit([&inside] { inside.set_value(ThreadPool::InsideWorker()); });
  EXPECT_TRUE(inside.get_future().get());
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, GlobalPoolHonorsConfiguredCount) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  EXPECT_EQ(GlobalThreadPool()->num_threads(), 3);
  SetGlobalThreadCount(2);
  EXPECT_EQ(GlobalThreadPool()->num_threads(), 2);
}

TEST(ThreadPoolTest, ScopedThreadPoolResolution) {
  SetGlobalThreadCount(2);
  ScopedThreadPool global(0);
  EXPECT_EQ(global.get(), GlobalThreadPool());
  ScopedThreadPool serial(1);
  EXPECT_EQ(serial.get(), nullptr);
  ScopedThreadPool owned(4);
  ASSERT_NE(owned.get(), nullptr);
  EXPECT_NE(owned.get(), GlobalThreadPool());
  EXPECT_EQ(owned.get()->num_threads(), 4);
}

}  // namespace
}  // namespace adalsh
