#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  EXPECT_EQ(Tokenize("Verroios, H. 2017"),
            (std::vector<std::string>{"verroios", "h", "2017"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize(" .,;--! ").empty());
}

TEST(TokenizerTest, AlnumRunsStayTogether) {
  EXPECT_EQ(Tokenize("top-k ER2017x"),
            (std::vector<std::string>{"top", "k", "er2017x"}));
}

TEST(HashTokenTest, DeterministicAndDistinct) {
  EXPECT_EQ(HashToken("abc"), HashToken("abc"));
  EXPECT_NE(HashToken("abc"), HashToken("abd"));
  EXPECT_NE(HashToken("abc"), HashToken("ab"));
}

TEST(HashTokenSequenceTest, OrderSensitive) {
  std::vector<std::string> ab = {"a", "b"};
  std::vector<std::string> ba = {"b", "a"};
  EXPECT_NE(HashTokenSequence(ab, 0, 2), HashTokenSequence(ba, 0, 2));
}

TEST(HashTokenSequenceTest, SeparatorPreventsGluing) {
  // ["ab","c"] must differ from ["a","bc"].
  std::vector<std::string> x = {"ab", "c"};
  std::vector<std::string> y = {"a", "bc"};
  EXPECT_NE(HashTokenSequence(x, 0, 2), HashTokenSequence(y, 0, 2));
}

TEST(HashTokenSequenceTest, SubrangeMatchesEqualTokens) {
  std::vector<std::string> long_seq = {"x", "a", "b", "y"};
  std::vector<std::string> short_seq = {"a", "b"};
  EXPECT_EQ(HashTokenSequence(long_seq, 1, 3),
            HashTokenSequence(short_seq, 0, 2));
}

}  // namespace
}  // namespace adalsh
