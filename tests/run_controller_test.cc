// Tests for deadline-aware anytime execution (docs/robustness.md): the
// RunController/RunBudget primitives, the deterministic fault-injection
// harness, and — the property the whole design hangs on — that a run stopped
// at an exact, fault-injected point returns a *valid* best-effort partial
// FilterOutput that is bit-identical at any thread count.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/cost_model.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "core/streaming_adaptive_lsh.h"
#include "datagen/generated_dataset.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/run_controller.h"
#include "util/rng.h"

namespace adalsh {
namespace {

const int kThreadCounts[] = {1, 2, 8};
const FaultSite kAllSites[] = {FaultSite::kHashApply, FaultSite::kPairwiseTile,
                               FaultSite::kMerge};

/// Fixed cost model (as in parallel_equivalence_test.cc) so jump-to-P
/// decisions do not depend on wall-clock calibration noise.
CostModel FixedCostModel() { return CostModel(1e-8, 1e-6); }

// ---------------------------------------------------------------------------
// RunBudget / RunController unit behavior.
// ---------------------------------------------------------------------------

TEST(RunBudgetTest, DefaultIsUnlimitedAndValid) {
  RunBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.Validate().ok());
}

TEST(RunBudgetTest, NonFiniteDeadlineIsInvalid) {
  RunBudget budget;
  budget.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(budget.Validate().ok());
  budget.deadline_ms = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(budget.Validate().ok());
  budget.deadline_ms = -5.0;  // negative = disabled, not invalid
  EXPECT_TRUE(budget.Validate().ok());
}

TEST(RunControllerTest, UnlimitedControllerNeverStops) {
  RunController controller;
  controller.ReportHashes(1u << 30);
  controller.ReportPairwise(1u << 30);
  EXPECT_FALSE(controller.ShouldStop());
  EXPECT_FALSE(controller.stopped());
  EXPECT_EQ(controller.reason(), TerminationReason::kCompleted);
  EXPECT_EQ(controller.RemainingMillis(),
            std::numeric_limits<double>::infinity());
}

TEST(RunControllerTest, CancelStopsAndIsSticky) {
  RunController controller;
  EXPECT_FALSE(controller.ShouldStop());
  controller.Cancel();
  EXPECT_TRUE(controller.cancel_requested());
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kCancelled);
  // Sticky within the run...
  EXPECT_TRUE(controller.ShouldStop());
  // ...and across Arm(): a cancellation always stops the next run too.
  controller.Arm();
  EXPECT_EQ(controller.reason(), TerminationReason::kCompleted);
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kCancelled);
}

TEST(RunControllerTest, PairwiseBudgetTrips) {
  RunBudget budget;
  budget.max_pairwise = 100;
  RunController controller(budget);
  controller.ReportPairwise(99);
  EXPECT_FALSE(controller.ShouldStop());
  controller.ReportPairwise(100);
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kBudgetExhausted);
}

TEST(RunControllerTest, HashBudgetTrips) {
  RunBudget budget;
  budget.max_hashes = 10;
  RunController controller(budget);
  controller.ReportHashes(9);
  EXPECT_FALSE(controller.ShouldStop());
  controller.ReportHashes(10);
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kBudgetExhausted);
}

TEST(RunControllerTest, ProgressReportsAreMonotonicMax) {
  RunBudget budget;
  budget.max_hashes = 100;
  RunController controller(budget);
  controller.ReportHashes(150);
  controller.ReportHashes(10);  // lower report must not rewind progress
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kBudgetExhausted);
}

TEST(RunControllerTest, ArmBasesOffsetBudgets) {
  // Long-lived engines (streaming) report cumulative totals across calls;
  // the bases make the caps per-run.
  RunBudget budget;
  budget.max_hashes = 100;
  budget.max_pairwise = 50;
  RunController controller(budget);
  controller.Arm(/*hash_base=*/1000, /*pairwise_base=*/500);
  controller.ReportHashes(1099);
  controller.ReportPairwise(549);
  EXPECT_FALSE(controller.ShouldStop());
  controller.ReportHashes(1100);
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kBudgetExhausted);
}

TEST(RunControllerTest, CancellationWinsTheCheckOrder) {
  RunBudget budget;
  budget.max_pairwise = 1;
  RunController controller(budget);
  controller.ReportPairwise(10);  // budget exhausted too
  controller.Cancel();
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kCancelled);
}

TEST(RunControllerTest, ExpiredDeadlineStops) {
  RunBudget budget;
  budget.deadline_ms = 1e-9;  // rounds to a zero-length deadline
  RunController controller(budget);
  EXPECT_TRUE(controller.ShouldStop());
  EXPECT_EQ(controller.reason(), TerminationReason::kDeadline);
  EXPECT_LE(controller.RemainingMillis(), 0.0);
}

TEST(TerminationReasonTest, NamesAreStable) {
  // The run report JSON and the run_controller metrics key on these.
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kCompleted),
               "completed");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kDeadline),
               "deadline");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kCancelled),
               "cancelled");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kBudgetExhausted),
               "budget_exhausted");
}

// ---------------------------------------------------------------------------
// FaultInjector unit behavior.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, CountsHitsAndTriggersAtNth) {
  FaultInjector injector;
  int fired = 0;
  injector.TriggerAt(FaultSite::kHashApply, 2, [&] { ++fired; });
  ScopedFaultInjector scoped(&injector);
  FaultInjectionPoint(FaultSite::kHashApply);
  EXPECT_EQ(fired, 0);
  FaultInjectionPoint(FaultSite::kHashApply);
  EXPECT_EQ(fired, 1);
  FaultInjectionPoint(FaultSite::kHashApply);  // fires once, not again
  EXPECT_EQ(fired, 1);
  FaultInjectionPoint(FaultSite::kMerge);  // other sites independent
  EXPECT_EQ(injector.hits(FaultSite::kHashApply), 3u);
  EXPECT_EQ(injector.hits(FaultSite::kMerge), 1u);
  EXPECT_EQ(injector.hits(FaultSite::kPairwiseTile), 0u);
}

TEST(FaultInjectorTest, UninstalledSitesAreInert) {
  FaultInjector injector;
  {
    ScopedFaultInjector scoped(&injector);
    FaultInjectionPoint(FaultSite::kPairwiseTile);
  }
  FaultInjectionPoint(FaultSite::kPairwiseTile);  // after uninstall: no-op
  EXPECT_EQ(injector.hits(FaultSite::kPairwiseTile), 1u);
}

TEST(FaultInjectorTest, CancelAtCancelsTheController) {
  FaultInjector injector;
  RunController controller;
  injector.CancelAt(FaultSite::kPairwiseTile, 1, &controller);
  ScopedFaultInjector scoped(&injector);
  EXPECT_FALSE(controller.cancel_requested());
  FaultInjectionPoint(FaultSite::kPairwiseTile);
  EXPECT_TRUE(controller.cancel_requested());
}

// ---------------------------------------------------------------------------
// Method-level anytime behavior.
// ---------------------------------------------------------------------------

/// Everything in a (possibly partial) FilterOutput that the robustness
/// contract defines to be deterministic. Timing fields are excluded.
struct RoundSummary {
  size_t cluster_size;
  uint64_t hashes;
  uint64_t pairwise;
  bool interrupted;

  bool operator==(const RoundSummary&) const = default;
};

struct ComparablePartial {
  std::vector<std::vector<RecordId>> clusters;
  std::vector<int> verification;
  TerminationReason reason;
  uint64_t hashes;
  uint64_t pairwise;
  std::vector<RoundSummary> rounds;
  std::vector<size_t> records_last_hashed_at;
  size_t records_finished_by_pairwise;

  bool operator==(const ComparablePartial&) const = default;
};

ComparablePartial Comparable(const FilterOutput& output) {
  ComparablePartial c;
  c.clusters = output.clusters.clusters;
  c.verification = output.stats.cluster_verification;
  c.reason = output.stats.termination_reason;
  c.hashes = output.stats.hashes_computed;
  c.pairwise = output.stats.pairwise_similarities;
  for (const RoundRecord& round : output.stats.round_records) {
    c.rounds.push_back(RoundSummary{round.cluster_size, round.hashes_computed,
                                    round.pairwise_similarities,
                                    round.interrupted});
  }
  c.records_last_hashed_at = output.stats.records_last_hashed_at;
  c.records_finished_by_pairwise = output.stats.records_finished_by_pairwise;
  return c;
}

/// Structural validity of a best-effort partial output: disjoint in-range
/// clusters, an aligned verification array, at most k clusters, and the
/// FilterStats sum invariants (which must survive interrupted rounds).
void ExpectValidPartial(const FilterOutput& output, size_t num_records,
                        int k) {
  EXPECT_LE(output.clusters.clusters.size(), static_cast<size_t>(k));
  std::set<RecordId> seen;
  for (const std::vector<RecordId>& cluster : output.clusters.clusters) {
    EXPECT_FALSE(cluster.empty());
    for (RecordId r : cluster) {
      EXPECT_LT(r, num_records);
      EXPECT_TRUE(seen.insert(r).second) << "record " << r << " in two clusters";
    }
  }
  const FilterStats& stats = output.stats;
  ASSERT_EQ(stats.cluster_verification.size(), output.clusters.clusters.size());
  for (int level : stats.cluster_verification) {
    EXPECT_GE(level, kLastFunctionPairwise);
  }
  EXPECT_EQ(stats.round_records.size(), stats.rounds);
  uint64_t round_hashes = 0;
  uint64_t round_pairwise = 0;
  for (const RoundRecord& round : stats.round_records) {
    round_hashes += round.hashes_computed;
    round_pairwise += round.pairwise_similarities;
  }
  EXPECT_EQ(round_hashes, stats.hashes_computed);
  EXPECT_EQ(round_pairwise, stats.pairwise_similarities);
  // Definition 3 conservation: every record counted exactly once. The one
  // exception is the Pairs baseline stopped before its single round, which
  // treated nothing.
  size_t treated = stats.records_finished_by_pairwise;
  for (size_t n : stats.records_last_hashed_at) treated += n;
  EXPECT_TRUE(treated == num_records || (stats.rounds == 0 && treated == 0))
      << "treated " << treated << " of " << num_records << " records in "
      << stats.rounds << " rounds";
}

GeneratedDataset PlantedForSeed(uint64_t seed, uint64_t salt) {
  Rng rng(DeriveSeed(seed, salt));
  std::vector<size_t> sizes;
  for (int c = 0; c < 5; ++c) sizes.push_back(2 + rng.NextBelow(20));
  for (int s = 0; s < 20; ++s) sizes.push_back(1);
  return test::MakePlantedDataset(sizes, seed);
}

FilterOutput RunAdaptive(const GeneratedDataset& generated, uint64_t seed,
                         int threads, int k, RunController* controller,
                         FaultInjector* injector, RunBudget budget = {},
                         bool ablate = false) {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 320;
  config.calibration_samples = 5;
  config.seed = seed;
  config.threads = threads;
  config.budget = budget;
  config.controller = controller;
  config.ablate_incremental_reuse = ablate;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  adalsh.set_cost_model(FixedCostModel());
  // Installed only around Run(): construction/calibration is out of scope.
  std::optional<ScopedFaultInjector> scoped;
  if (injector != nullptr) scoped.emplace(injector);
  return adalsh.Run(k);
}

FilterOutput RunLshBlocking(const GeneratedDataset& generated, uint64_t seed,
                            int threads, int k, RunController* controller,
                            FaultInjector* injector, RunBudget budget = {}) {
  LshBlockingConfig config;
  config.num_hashes = 256;
  config.seed = seed;
  config.threads = threads;
  config.budget = budget;
  config.controller = controller;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  std::optional<ScopedFaultInjector> scoped;
  if (injector != nullptr) scoped.emplace(injector);
  return blocking.Run(k);
}

FilterOutput RunPairs(const GeneratedDataset& generated, int threads, int k,
                      RunController* controller, FaultInjector* injector,
                      RunBudget budget = {}) {
  PairsBaseline pairs(generated.dataset, generated.rule, threads,
                      Instrumentation{}, budget, controller);
  std::optional<ScopedFaultInjector> scoped;
  if (injector != nullptr) scoped.emplace(injector);
  return pairs.Run(k);
}

/// The core fault-injection matrix: cancel at the nth hit of `site` and
/// demand a valid, kCancelled partial output that is identical at every
/// thread count. `runner` abstracts over the method.
template <typename Runner>
void ExpectCancellationDeterministicAcrossThreads(
    Runner runner, size_t num_records, int k, FaultSite site, uint64_t nth,
    const char* what) {
  std::optional<ComparablePartial> reference;
  for (int threads : kThreadCounts) {
    RunController token;  // unlimited: a pure cancellation token
    FaultInjector injector;
    injector.CancelAt(site, nth, &token);
    FilterOutput output = runner(threads, &token, &injector);
    EXPECT_EQ(output.stats.termination_reason, TerminationReason::kCancelled)
        << what << " site " << FaultSiteName(site) << " nth " << nth;
    ExpectValidPartial(output, num_records, k);
    ComparablePartial comparable = Comparable(output);
    if (!reference.has_value()) {
      reference = std::move(comparable);
    } else {
      EXPECT_EQ(comparable, *reference)
          << what << ": partial output with " << threads
          << " threads diverged (site " << FaultSiteName(site) << ", hit "
          << nth << ")";
    }
  }
}

TEST(FaultInjectedCancellationTest, AdaptiveLshAllSitesAllThreadCounts) {
  constexpr int kK = 3;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratedDataset generated = PlantedForSeed(seed, 0xfa11);
    const size_t num_records = generated.dataset.num_records();
    // Reference run discovers how many times each site fires.
    FaultInjector counting;
    RunAdaptive(generated, seed, /*threads=*/1, kK, nullptr, &counting);
    for (FaultSite site : kAllSites) {
      const uint64_t total = counting.hits(site);
      if (total == 0) continue;
      for (uint64_t nth : {uint64_t{1}, (total + 1) / 2}) {
        ExpectCancellationDeterministicAcrossThreads(
            [&](int threads, RunController* token, FaultInjector* injector) {
              return RunAdaptive(generated, seed, threads, kK, token,
                                 injector);
            },
            num_records, kK, site, nth, "adaLSH");
      }
    }
  }
}

TEST(FaultInjectedCancellationTest, LshBlockingAllSites) {
  constexpr int kK = 3;
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    GeneratedDataset generated = PlantedForSeed(seed, 0xb10c);
    const size_t num_records = generated.dataset.num_records();
    FaultInjector counting;
    RunLshBlocking(generated, seed, /*threads=*/1, kK, nullptr, &counting);
    for (FaultSite site : kAllSites) {
      const uint64_t total = counting.hits(site);
      if (total == 0) continue;
      for (uint64_t nth : {uint64_t{1}, (total + 1) / 2}) {
        ExpectCancellationDeterministicAcrossThreads(
            [&](int threads, RunController* token, FaultInjector* injector) {
              return RunLshBlocking(generated, seed, threads, kK, token,
                                    injector);
            },
            num_records, kK, site, nth, "LSH-X");
      }
    }
  }
}

TEST(FaultInjectedCancellationTest, PairsBaselineMidSweep) {
  constexpr int kK = 3;
  for (uint64_t seed = 31; seed <= 34; ++seed) {
    // A leading cluster spanning multiple row stripes, so cancellation lands
    // mid-sweep in the tiled engine too.
    Rng rng(DeriveSeed(seed, 0xba5e));
    std::vector<size_t> sizes;
    sizes.push_back(60 + rng.NextBelow(60));
    for (int c = 0; c < 3; ++c) sizes.push_back(2 + rng.NextBelow(20));
    for (int s = 0; s < 30; ++s) sizes.push_back(1);
    GeneratedDataset generated = test::MakePlantedDataset(sizes, seed);
    const size_t num_records = generated.dataset.num_records();
    FaultInjector counting;
    RunPairs(generated, /*threads=*/1, kK, nullptr, &counting);
    const uint64_t total = counting.hits(FaultSite::kPairwiseTile);
    ASSERT_GT(total, 1u);
    for (uint64_t nth : {uint64_t{2}, (total + 1) / 2}) {
      ExpectCancellationDeterministicAcrossThreads(
          [&](int threads, RunController* token, FaultInjector* injector) {
            return RunPairs(generated, threads, kK, token, injector);
          },
          num_records, kK, FaultSite::kPairwiseTile, nth, "Pairs");
    }
  }
}

TEST(FaultInjectedCancellationTest, AdaptiveLshAblationSelectionPath) {
  // The ablation selection path has its own degradation fill; cancel
  // mid-run and demand the same cross-thread determinism.
  constexpr int kK = 3;
  for (uint64_t seed = 41; seed <= 43; ++seed) {
    GeneratedDataset generated = PlantedForSeed(seed, 0xab1a);
    const size_t num_records = generated.dataset.num_records();
    FaultInjector counting;
    RunAdaptive(generated, seed, /*threads=*/1, kK, nullptr, &counting,
                RunBudget{}, /*ablate=*/true);
    const uint64_t total = counting.hits(FaultSite::kHashApply);
    ASSERT_GT(total, 0u);
    ExpectCancellationDeterministicAcrossThreads(
        [&](int threads, RunController* token, FaultInjector* injector) {
          return RunAdaptive(generated, seed, threads, kK, token, injector,
                             RunBudget{}, /*ablate=*/true);
        },
        num_records, kK, FaultSite::kHashApply, (total + 1) / 2,
        "adaLSH-ablation");
  }
}

// ---------------------------------------------------------------------------
// Deadline paths (wall-clock, made deterministic by injected latency).
// ---------------------------------------------------------------------------

TEST(DeadlineTest, PreRoundOneStopReturnsEmptyBestEffort) {
  // A zero-length deadline fires at the very first cooperative check: no
  // round runs, the output is the empty best-effort answer.
  GeneratedDataset generated = PlantedForSeed(51, 0xdead);
  RunBudget budget;
  budget.deadline_ms = 1e-9;
  for (int threads : kThreadCounts) {
    FilterOutput adalsh =
        RunAdaptive(generated, 51, threads, 3, nullptr, nullptr, budget);
    EXPECT_EQ(adalsh.stats.termination_reason, TerminationReason::kDeadline);
    EXPECT_EQ(adalsh.stats.rounds, 0u);
    EXPECT_TRUE(adalsh.clusters.clusters.empty());
    ExpectValidPartial(adalsh, generated.dataset.num_records(), 3);

    FilterOutput lsh =
        RunLshBlocking(generated, 51, threads, 3, nullptr, nullptr, budget);
    EXPECT_EQ(lsh.stats.termination_reason, TerminationReason::kDeadline);
    EXPECT_EQ(lsh.stats.rounds, 0u);
    EXPECT_TRUE(lsh.clusters.clusters.empty());

    FilterOutput pairs =
        RunPairs(generated, threads, 3, nullptr, nullptr, budget);
    EXPECT_EQ(pairs.stats.termination_reason, TerminationReason::kDeadline);
    EXPECT_EQ(pairs.stats.rounds, 0u);
    EXPECT_TRUE(pairs.clusters.clusters.empty());
    ExpectValidPartial(pairs, generated.dataset.num_records(), 3);
  }
}

TEST(DeadlineTest, LatencyInjectionExpiresDeadlineMidHashPass) {
  // 100ms of injected latency at every hash block against a 50ms deadline: the
  // first block's check already sees the deadline expired, so the initial
  // H_1 pass is interrupted deterministically.
  GeneratedDataset generated = PlantedForSeed(52, 0xdead);
  RunBudget budget;
  budget.deadline_ms = 50.0;
  FaultInjector injector;
  injector.InjectLatency(FaultSite::kHashApply, 100000);
  FilterOutput output =
      RunAdaptive(generated, 52, /*threads=*/2, 3, nullptr, &injector, budget);
  EXPECT_EQ(output.stats.termination_reason, TerminationReason::kDeadline);
  ASSERT_EQ(output.stats.rounds, 1u);
  EXPECT_TRUE(output.stats.round_records[0].interrupted);
  // An interrupted initial pass degrades to the empty clustering.
  EXPECT_TRUE(output.clusters.clusters.empty());
  ExpectValidPartial(output, generated.dataset.num_records(), 3);
}

TEST(DeadlineTest, LatencyInjectionExpiresDeadlineMidPairwiseSweep) {
  GeneratedDataset generated = PlantedForSeed(53, 0xdead);
  RunBudget budget;
  budget.deadline_ms = 50.0;
  FaultInjector injector;
  injector.InjectLatency(FaultSite::kPairwiseTile, 100000);
  FilterOutput output = RunPairs(generated, /*threads=*/2, 3, nullptr,
                                 &injector, budget);
  EXPECT_EQ(output.stats.termination_reason, TerminationReason::kDeadline);
  ASSERT_EQ(output.stats.rounds, 1u);
  EXPECT_TRUE(output.stats.round_records[0].interrupted);
  ExpectValidPartial(output, generated.dataset.num_records(), 3);
}

// ---------------------------------------------------------------------------
// Budget exhaustion (counter-based, hence deterministic across threads).
// ---------------------------------------------------------------------------

TEST(BudgetTest, AdaptiveLshHashBudgetExhaustsDeterministically) {
  GeneratedDataset generated = PlantedForSeed(61, 0xb4d6);
  RunBudget budget;
  budget.max_hashes = 2000;
  std::optional<ComparablePartial> reference;
  for (int threads : kThreadCounts) {
    FilterOutput output =
        RunAdaptive(generated, 61, threads, 3, nullptr, nullptr, budget);
    EXPECT_EQ(output.stats.termination_reason,
              TerminationReason::kBudgetExhausted);
    ExpectValidPartial(output, generated.dataset.num_records(), 3);
    ComparablePartial comparable = Comparable(output);
    if (!reference.has_value()) {
      reference = std::move(comparable);
    } else {
      EXPECT_EQ(comparable, *reference);
    }
  }
}

TEST(BudgetTest, PairsPairwiseBudgetKeepsPartialComponents) {
  // The Pairs deviation: an interrupted sweep KEEPS the components found so
  // far (every applied merge is exact), unlike the hash methods' discard.
  std::vector<size_t> sizes{80, 15, 10};
  for (int s = 0; s < 30; ++s) sizes.push_back(1);
  GeneratedDataset generated = test::MakePlantedDataset(sizes, 62);
  RunBudget budget;
  budget.max_pairwise = 500;  // far below the full quadratic sweep
  std::optional<ComparablePartial> reference;
  for (int threads : kThreadCounts) {
    FilterOutput output = RunPairs(generated, threads, 3, nullptr, nullptr,
                                   budget);
    EXPECT_EQ(output.stats.termination_reason,
              TerminationReason::kBudgetExhausted);
    ASSERT_EQ(output.stats.rounds, 1u);
    EXPECT_TRUE(output.stats.round_records[0].interrupted);
    EXPECT_FALSE(output.clusters.clusters.empty());
    ExpectValidPartial(output, generated.dataset.num_records(), 3);
    ComparablePartial comparable = Comparable(output);
    if (!reference.has_value()) {
      reference = std::move(comparable);
    } else {
      EXPECT_EQ(comparable, *reference);
    }
  }
}

// ---------------------------------------------------------------------------
// No budget, no controller: bit-identical to the plain run.
// ---------------------------------------------------------------------------

TEST(NoBudgetEquivalenceTest, UnlimitedControllerMatchesUncontrolledRun) {
  for (uint64_t seed : {71, 72, 73}) {
    GeneratedDataset generated = PlantedForSeed(seed, 0xe901);
    FilterOutput plain =
        RunAdaptive(generated, seed, /*threads=*/2, 3, nullptr, nullptr);
    EXPECT_EQ(plain.stats.termination_reason, TerminationReason::kCompleted);

    // An attached-but-unlimited external controller must not perturb the run.
    RunController token;
    FilterOutput controlled =
        RunAdaptive(generated, seed, /*threads=*/2, 3, &token, nullptr);
    EXPECT_EQ(Comparable(controlled), Comparable(plain));

    // Nor must a budget generous enough never to fire.
    RunBudget roomy;
    roomy.max_hashes = 1u << 30;
    roomy.max_pairwise = 1u << 30;
    FilterOutput budgeted =
        RunAdaptive(generated, seed, /*threads=*/2, 3, nullptr, nullptr,
                    roomy);
    EXPECT_EQ(Comparable(budgeted), Comparable(plain));
  }
}

// ---------------------------------------------------------------------------
// Streaming: cancellation validity, sticky tokens, budgeted convergence.
// ---------------------------------------------------------------------------

AdaptiveLshConfig StreamingConfig(uint64_t seed, int threads,
                                  RunController* controller,
                                  RunBudget budget = {}) {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 320;
  config.calibration_samples = 5;
  config.seed = seed;
  config.threads = threads;
  config.budget = budget;
  config.controller = controller;
  return config;
}

TEST(StreamingAnytimeTest, CancelledTopKReturnsValidPartialAndStaysSticky) {
  for (int threads : {1, 2}) {
    GeneratedDataset generated = PlantedForSeed(81, 0x57e4);
    const size_t num_records = generated.dataset.num_records();
    RunController token;
    StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                                StreamingConfig(81, threads, &token));
    for (RecordId r = 0; r < num_records; ++r) stream.Add(r);

    // Arm every site: whichever fires first (the refinement mix depends on
    // the wall-clock-calibrated cost model) cancels the call.
    FaultInjector injector;
    for (FaultSite site : kAllSites) injector.CancelAt(site, 1, &token);
    FilterOutput partial;
    {
      ScopedFaultInjector scoped(&injector);
      partial = stream.TopK(3);
    }
    EXPECT_EQ(partial.stats.termination_reason, TerminationReason::kCancelled);
    ExpectValidPartial(partial, num_records, 3);

    // A cancelled token is sticky: the next TopK on the same stream stops
    // before round 1 and returns the current clusters as best effort.
    FilterOutput again = stream.TopK(3);
    EXPECT_EQ(again.stats.termination_reason, TerminationReason::kCancelled);
    EXPECT_EQ(again.stats.rounds, 0u);
    ExpectValidPartial(again, num_records, 3);

    // The interrupted call must not have corrupted the stream: arrivals
    // still work after a cancelled TopK.
    EXPECT_EQ(stream.num_added(), num_records);
  }
}

TEST(StreamingAnytimeTest, PerCallBudgetsEventuallyComplete) {
  // Each TopK gets a fresh budget window (the controller is armed with the
  // stream's cumulative totals as bases). Completed rounds survive an
  // exhausted call, so repeated budgeted calls must converge to a fully
  // verified answer.
  GeneratedDataset generated = PlantedForSeed(82, 0x57e4);
  const size_t num_records = generated.dataset.num_records();
  RunBudget per_call;
  per_call.max_hashes = 20000;
  per_call.max_pairwise = 2000;
  StreamingAdaptiveLsh stream(generated.dataset, generated.rule,
                              StreamingConfig(82, /*threads=*/2, nullptr,
                                              per_call));
  for (RecordId r = 0; r < num_records; ++r) stream.Add(r);

  FilterOutput output;
  bool completed = false;
  for (int call = 0; call < 50 && !completed; ++call) {
    output = stream.TopK(3);
    ExpectValidPartial(output, num_records, 3);
    completed =
        output.stats.termination_reason == TerminationReason::kCompleted;
  }
  ASSERT_TRUE(completed) << "budgeted TopK calls did not converge";
  // A completed answer is fully verified: every returned cluster is either
  // P-certified or at the last hashing level.
  const int last_function = static_cast<int>(stream.sequence().size()) - 1;
  for (int level : output.stats.cluster_verification) {
    EXPECT_TRUE(level == kLastFunctionPairwise || level == last_function)
        << "unverified cluster at level " << level << " in a completed run";
  }
}

// ---------------------------------------------------------------------------
// Config validation (Status, not CHECK, on user input).
// ---------------------------------------------------------------------------

TEST(ConfigValidationTest, AdaptiveLshConfigRejectsBadValues) {
  AdaptiveLshConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.calibration_samples = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.calibration_samples = 5;
  config.pairwise_noise_factor = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.pairwise_noise_factor = 1.1;
  config.threads = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.threads = 0;
  config.budget.deadline_ms = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(config.Validate().ok());
  config.budget.deadline_ms = 0.0;
  config.sequence.max_budget = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidationTest, LshBlockingConfigRejectsBadValues) {
  LshBlockingConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_hashes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.num_hashes = 64;
  config.threads = -2;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace adalsh
