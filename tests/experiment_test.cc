#include "eval/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ResultTableTest, AlignedOutput) {
  ResultTable table({"k", "method", "seconds"});
  table.AddRow({"2", "adaLSH", "0.015"});
  table.AddRow({"10", "LSH1280", "1.250"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("| k "), std::string::npos);
  EXPECT_NE(text.find("adaLSH"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
}

TEST(ResultTableDeathTest, RowArityMismatch) {
  ResultTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"1"}), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
}

TEST(WorkloadTest, CoraScales) {
  GeneratedDataset base = MakeCoraWorkload(1, 42);
  GeneratedDataset doubled = MakeCoraWorkload(2, 42);
  EXPECT_EQ(doubled.dataset.num_records(), 2 * base.dataset.num_records());
  EXPECT_TRUE(doubled.rule.Validate(doubled.dataset.record(0)).ok());
}

TEST(WorkloadTest, SpotSigsThresholdVariant) {
  GeneratedDataset strict = MakeSpotSigsWorkload(1, 0.5, 42);
  EXPECT_NEAR(strict.rule.threshold(), 0.5, 1e-12);
}

TEST(WorkloadTest, PopularImagesParameters) {
  GeneratedDataset generated =
      MakePopularImagesWorkload(1.1, 5.0, 500, 42);
  EXPECT_EQ(generated.dataset.num_records(), 500u);
  EXPECT_NEAR(generated.rule.threshold(), 5.0 / 180.0, 1e-12);
}

}  // namespace
}  // namespace adalsh
