// Parameterized property sweeps over the library's probabilistic guarantees:
// LSH collision curves vs analytic predictions, the sequence properties of
// Section 2.2, and Largest-First behaviour.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/pairs_baseline.h"
#include "core/scheme_optimizer.h"
#include "core/transitive_hash_function.h"
#include "datagen/spotsigs_like.h"
#include "distance/cosine.h"
#include "eval/metrics.h"
#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "test_util.h"

namespace adalsh {
namespace {

// ---------------------------------------------------------------------------
// Collision-rate sweep: empirical (w, z)-scheme bucket collisions must track
// the analytic 1 - (1 - p^w)^z curve (Fig. 5 / Fig. 7).
// ---------------------------------------------------------------------------

class SchemeCollisionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SchemeCollisionSweep, EmpiricalMatchesAnalytic) {
  auto [w, z, degrees] = GetParam();
  double x = DegreesToNormalizedAngle(degrees);
  double theta = degrees * M_PI / 180.0;

  // Build the two vectors at the target angle and count shared buckets over
  // many independent scheme instantiations.
  std::vector<Field> fa, fb;
  fa.push_back(Field::DenseVector({1.0f, 0.0f}));
  fb.push_back(Field::DenseVector({static_cast<float>(std::cos(theta)),
                                   static_cast<float>(std::sin(theta))}));
  Record a(std::move(fa)), b(std::move(fb));

  constexpr int kTrials = 300;
  int collisions = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomHyperplaneFamily family(0, 2, 1000 + trial);
    std::vector<uint64_t> ha(w * z), hb(w * z);
    family.HashRange(a, 0, w * z, ha.data());
    family.HashRange(b, 0, w * z, hb.data());
    bool shared = false;
    for (int t = 0; t < z && !shared; ++t) {
      bool table_equal = true;
      for (int j = 0; j < w; ++j) {
        if (ha[t * w + j] != hb[t * w + j]) {
          table_equal = false;
          break;
        }
      }
      shared = table_equal;
    }
    collisions += shared;
  }
  double empirical = static_cast<double>(collisions) / kTrials;
  double analytic =
      SchemeCollisionProbability(LinearCollisionModel(), x, w, z);
  EXPECT_NEAR(empirical, analytic, 0.08)
      << "w=" << w << " z=" << z << " angle=" << degrees;
}

INSTANTIATE_TEST_SUITE_P(
    WzAngles, SchemeCollisionSweep,
    ::testing::Values(std::make_tuple(1, 1, 30.0), std::make_tuple(4, 4, 15.0),
                      std::make_tuple(4, 4, 45.0), std::make_tuple(8, 2, 20.0),
                      std::make_tuple(2, 8, 60.0),
                      std::make_tuple(6, 10, 30.0)));

// ---------------------------------------------------------------------------
// Optimizer sweep: for every budget, the chosen scheme satisfies the
// threshold constraint whenever it reports constraint_met, consumes the
// budget exactly, and tighter thresholds never get a larger objective.
// ---------------------------------------------------------------------------

class OptimizerBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerBudgetSweep, SchemeSatisfiesConstraint) {
  int budget = GetParam();
  OptimizerConfig config;
  for (double threshold : {0.05, 0.1, 0.2, 0.4, 0.6}) {
    OptimizerUnit unit;
    unit.p = LinearCollisionModel();
    unit.threshold = threshold;
    WzScheme scheme = OptimizeSingleScheme(unit, budget, config);
    EXPECT_EQ(scheme.budget(), budget);
    if (scheme.constraint_met) {
      double prob = SchemeCollisionProbabilityWithRemainder(
          LinearCollisionModel(), threshold, scheme.w, scheme.z, scheme.w_rem);
      EXPECT_GE(prob, 1.0 - config.epsilon)
          << "budget=" << budget << " thr=" << threshold;
    }
  }
}

TEST_P(OptimizerBudgetSweep, TighterThresholdSharperScheme) {
  int budget = GetParam();
  OptimizerConfig config;
  OptimizerUnit tight, loose;
  tight.p = loose.p = LinearCollisionModel();
  tight.threshold = 0.05;
  loose.threshold = 0.5;
  WzScheme tight_scheme = OptimizeSingleScheme(tight, budget, config);
  WzScheme loose_scheme = OptimizeSingleScheme(loose, budget, config);
  if (tight_scheme.constraint_met && loose_scheme.constraint_met) {
    EXPECT_GE(tight_scheme.w, loose_scheme.w);
    EXPECT_LE(tight_scheme.objective, loose_scheme.objective + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, OptimizerBudgetSweep,
                         ::testing::Values(20, 40, 80, 160, 320, 640, 1280,
                                           2560));

// ---------------------------------------------------------------------------
// Sequence-property sweep (Section 2.2) on planted datasets of varying skew:
// increasing accuracy along the sequence and adaLSH == exact output.
// ---------------------------------------------------------------------------

class SequencePropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SequencePropertySweep, LaterFunctionsRefineClusters) {
  uint64_t seed = GetParam();
  GeneratedDataset generated =
      test::MakePlantedDataset({12, 8, 6, 4, 2, 1, 1}, seed);
  RuleHashStructure structure =
      CompileRuleForHashing(generated.rule).value();
  HashEngine engine(generated.dataset, structure, seed);
  ParentPointerForest forest;
  TransitiveHasher hasher(&engine, &forest,
                          generated.dataset.num_records());
  OptimizerConfig opt;
  size_t previous_clusters = 0;
  CompositeScheme previous_scheme;
  for (int i = 0; i < 5; ++i) {
    int budget = 20 << i;
    CompositeScheme scheme = OptimizeComposite(
        structure, budget, opt, i == 0 ? nullptr : &previous_scheme);
    SchemePlan plan = BuildPlan(structure, scheme);
    std::vector<NodeId> roots =
        hasher.Apply(generated.dataset.AllRecordIds(), plan, i);
    // Property 2 (increasing accuracy): false merges only shrink, so the
    // cluster count is non-decreasing along the sequence.
    EXPECT_GE(roots.size(), previous_clusters) << "function " << i;
    previous_clusters = roots.size();
    previous_scheme = scheme;
  }
  // The final function resolves the planted clustering (7 clusters).
  EXPECT_EQ(previous_clusters, 7u);
}

TEST_P(SequencePropertySweep, AdaptiveMatchesExactTopK) {
  uint64_t seed = GetParam();
  GeneratedDataset generated =
      test::MakePlantedDataset({18, 12, 7, 3, 1, 1, 1}, seed);
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 20;
  config.seed = seed;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput output = adalsh.Run(3);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(3), truth.TopKRecords(3))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencePropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// MinHash collision sweep across similarity levels.
// ---------------------------------------------------------------------------

class MinHashSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinHashSweep, CollisionRateEqualsJaccard) {
  int shared = GetParam();  // 0..8 shared of 8+8-shared union
  std::vector<uint64_t> ta, tb;
  for (int i = 0; i < 8; ++i) ta.push_back(i);
  for (int i = 8 - shared; i < 16 - shared; ++i) tb.push_back(i);
  std::vector<Field> fa, fb;
  fa.push_back(Field::TokenSet(ta));
  fb.push_back(Field::TokenSet(tb));
  Record a(std::move(fa)), b(std::move(fb));
  MinHashFamily family(0, 77);
  constexpr size_t kCount = 5000;
  std::vector<uint64_t> ha(kCount), hb(kCount);
  family.HashRange(a, 0, kCount, ha.data());
  family.HashRange(b, 0, kCount, hb.data());
  size_t equal = 0;
  for (size_t i = 0; i < kCount; ++i) equal += (ha[i] == hb[i]);
  double expected = static_cast<double>(shared) / (16 - shared);
  EXPECT_NEAR(static_cast<double>(equal) / kCount, expected, 0.03)
      << "shared " << shared;
}

INSTANTIATE_TEST_SUITE_P(SharedTokens, MinHashSweep,
                         ::testing::Values(0, 2, 4, 6, 8));

// ---------------------------------------------------------------------------
// Theorem 2 / incremental-mode prefix consistency: running with a larger k
// yields the same top-k' clusters (as record sets) for every k' below it,
// and the incremental callbacks arrive in rank order.
// ---------------------------------------------------------------------------

class PrefixConsistencySweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixConsistencySweep, LargerKPreservesPrefix) {
  int k_small = GetParam();
  GeneratedDataset generated =
      test::MakePlantedDataset({16, 11, 7, 5, 3, 2, 1, 1}, 41);
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 20;
  config.seed = 9;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput big = adalsh.Run(6);
  FilterOutput small = adalsh.Run(k_small);
  EXPECT_EQ(small.clusters.UnionOfTopClusters(k_small),
            big.clusters.UnionOfTopClusters(k_small))
      << "k' = " << k_small;
}

INSTANTIATE_TEST_SUITE_P(SmallKs, PrefixConsistencySweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// F1-target sweep (Appendix E.1's metric): across seeds, adaLSH's output
// matches the exact Pairs outcome almost perfectly — "adaLSH always gives
// the same (or a very slightly different) outcome as Pairs".
// ---------------------------------------------------------------------------

class F1TargetSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(F1TargetSweep, AdaptiveMatchesPairsOutcome) {
  uint64_t seed = GetParam();
  SpotSigsLikeConfig data_config;
  data_config.num_story_entities = 12;
  data_config.records_in_stories = 160;
  data_config.num_singletons = 120;
  data_config.seed = seed;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);

  AdaptiveLshConfig config;
  config.sequence.max_budget = 1280;
  config.calibration_samples = 20;
  config.seed = seed;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput adaptive = adalsh.Run(5);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput exact = pairs.Run(5);
  SetAccuracy f1_target =
      ComputeSetAccuracy(adaptive.clusters.UnionOfTopClusters(5),
                         exact.clusters.UnionOfTopClusters(5));
  // Size ties at the k-th rank can swap equally-valid clusters between
  // methods, so the bound leaves tie room.
  EXPECT_GT(f1_target.f1, 0.85) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, F1TargetSweep,
                         ::testing::Values(101, 102, 103, 104));

// ---------------------------------------------------------------------------
// Optimizer sweep over the Cora-shaped AND structure: per-budget feasibility
// and monotone per-unit w along a doubling schedule.
// ---------------------------------------------------------------------------

class AndProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(AndProgramSweep, FeasibleAndWithinBudget) {
  int budget = GetParam();
  OptimizerConfig config;
  OptimizerUnit title_author;
  title_author.p = LinearCollisionModel();
  title_author.threshold = 0.3;
  OptimizerUnit rest;
  rest.p = LinearCollisionModel();
  rest.threshold = 0.8;
  GroupScheme group = OptimizeAndGroup({title_author, rest}, budget, config);
  EXPECT_LE(group.budget(), budget + group.hashes_per_table());
  ASSERT_EQ(group.w.size(), 2u);
  EXPECT_GE(group.w[0], 1);
  EXPECT_GE(group.w[1], 1);
  EXPECT_GE(group.z, 1);
}

INSTANTIATE_TEST_SUITE_P(Budgets, AndProgramSweep,
                         ::testing::Values(20, 40, 80, 320, 1280));

}  // namespace
}  // namespace adalsh
