#include "engine/resident_engine.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_report.h"
#include "engine_harness.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/run_controller.h"

namespace adalsh {
namespace {

std::vector<Record> CopyRecords(const Dataset& dataset, size_t begin,
                                size_t end) {
  std::vector<Record> records;
  for (size_t r = begin; r < end; ++r) records.push_back(dataset.record(r));
  return records;
}

std::vector<Record> AllRecords(const Dataset& dataset) {
  return CopyRecords(dataset, 0, dataset.num_records());
}

TEST(ResidentEngineTest, SingleBatchIngestMatchesGroundTruth) {
  GeneratedDataset generated = test::MakePlantedDataset({12, 8, 5, 2, 1}, 5);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, /*top_k=*/3));
  auto result = engine.Ingest(AllRecords(generated.dataset));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().refinement, TerminationReason::kCompleted);
  EXPECT_EQ(result.value().generation, 1u);
  // Ids are assigned in record order, so external id == source record id.
  std::vector<ExternalId> ids = result.value().assigned_ids;
  ASSERT_EQ(ids.size(), generated.dataset.num_records());
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);

  auto top = engine.TopK(3);
  ASSERT_TRUE(top.ok());
  std::vector<RecordId> flat;
  for (const auto& cluster : top.value()) {
    for (ExternalId member : cluster) {
      flat.push_back(static_cast<RecordId>(member));
    }
  }
  std::sort(flat.begin(), flat.end());
  EXPECT_EQ(flat, generated.dataset.BuildGroundTruth().TopKRecords(3));
}

TEST(ResidentEngineTest, EmptyEngineServesGenerationZero) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 2}, 1);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
  EXPECT_EQ(snap->generation, 0u);
  EXPECT_EQ(snap->live_records, 0u);
  EXPECT_TRUE(snap->clusters.empty());
  auto top = engine.TopK(2);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top.value().empty());
  EXPECT_EQ(engine.Cluster(0).status().code(), StatusCode::kNotFound);
  // Empty mutations are valid and still count as batches.
  EXPECT_TRUE(engine.Flush().ok());
  EXPECT_TRUE(engine.Ingest({}).ok());
  EXPECT_EQ(engine.counters().batches, 2u);
}

TEST(ResidentEngineTest, ValidatesMutationsBeforeApplyingThem) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 3}, 2);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  ASSERT_TRUE(engine.Ingest(AllRecords(generated.dataset)).ok());

  // Schema drift: a second dense field the engine's schema does not have.
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet({1, 2, 3}));
  fields.push_back(Field::DenseVector({0.5f}));
  auto bad = engine.Ingest({Record(std::move(fields))});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Remove: unknown id, then a duplicate — both all-or-nothing.
  EXPECT_EQ(engine.Remove(std::vector<ExternalId>{99}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Remove(std::vector<ExternalId>{1, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.counters().removed, 0u);

  EXPECT_EQ(
      engine.Update(99, generated.dataset.record(0)).status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(engine.TopK(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.counters().live_records,
            generated.dataset.num_records());
}

TEST(ResidentEngineTest, AmbientStickyCancelRejectsMutations) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 2}, 3);
  RunController controller;
  ResidentEngine::Options options = test::EngineOptions(1, 2);
  options.config.controller = &controller;
  ResidentEngine engine(generated.rule, options);
  ASSERT_TRUE(engine.Ingest(CopyRecords(generated.dataset, 0, 3)).ok());
  controller.Cancel();
  EXPECT_EQ(
      engine.Ingest(CopyRecords(generated.dataset, 3, 5)).status().code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Flush().status().code(),
            StatusCode::kFailedPrecondition);
  // A per-request controller overrides the ambient one and works again.
  RunController fresh;
  EngineBatchOptions slo;
  slo.controller = &fresh;
  EXPECT_TRUE(engine.Ingest(CopyRecords(generated.dataset, 3, 5), slo).ok());
  EXPECT_EQ(engine.counters().ingested, 5u);
}

TEST(ResidentEngineTest, UpdateKeepsExternalIdStable) {
  // Entities: 0 -> records 0..5, 1 -> records 6..9. Updating one record of
  // the small entity to the big entity's contents moves it between clusters
  // while its external id stays put.
  GeneratedDataset generated = test::MakePlantedDataset({6, 4}, 7);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  ASSERT_TRUE(engine.Ingest(AllRecords(generated.dataset)).ok());
  auto before = engine.Cluster(6);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().size(), 4u);

  auto updated = engine.Update(6, generated.dataset.record(0));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated.value().assigned_ids, std::vector<ExternalId>{6});
  auto after = engine.Cluster(6);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 7u);
  EXPECT_TRUE(std::find(after.value().begin(), after.value().end(), 0u) !=
              after.value().end());
  EXPECT_EQ(engine.counters().updated, 1u);
  EXPECT_EQ(engine.counters().live_records, 10u);
}

TEST(ResidentEngineTest, RemoveAllRecordsPublishesEmptySnapshot) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 2}, 9);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  auto result = engine.Ingest(AllRecords(generated.dataset));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(engine.Remove(result.value().assigned_ids).ok());
  std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
  EXPECT_EQ(snap->live_records, 0u);
  EXPECT_TRUE(snap->clusters.empty());
  EXPECT_GT(snap->generation, result.value().generation);
  EXPECT_EQ(engine.Cluster(0).status().code(), StatusCode::kNotFound);
  // The ids are retired for good; re-ingesting assigns fresh ones.
  auto again = engine.Ingest(CopyRecords(generated.dataset, 0, 2));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().assigned_ids[0], 6u);
}

TEST(ResidentEngineTest, TopKTruncatesToTheMaintainedK) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 4, 3, 2}, 11);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, /*top_k=*/2));
  ASSERT_TRUE(engine.Ingest(AllRecords(generated.dataset)).ok());
  auto top = engine.TopK(10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value().size(), 2u);
  EXPECT_EQ(top.value()[0].size(), 5u);
  EXPECT_EQ(top.value()[1].size(), 4u);
  // A record of a below-top-k cluster is in no snapshot cluster.
  EXPECT_EQ(engine.Cluster(13).status().code(), StatusCode::kNotFound);
}

// Satellite: snapshot isolation. A query holding a snapshot taken before a
// mutation is never affected by it — even a Remove of the very records the
// snapshot's top cluster lists. (engine_equivalence_test.cc exercises the
// racing flavor; under TSan both prove the read path is unsynchronized with
// mutations only through the atomic snapshot swap.)
TEST(ResidentEngineTest, SnapshotIsolationSurvivesRemovalOfItsMembers) {
  GeneratedDataset generated = test::MakePlantedDataset({8, 5, 2}, 13);
  ResidentEngine engine(generated.rule, test::EngineOptions(2, 2));
  ASSERT_TRUE(engine.Ingest(AllRecords(generated.dataset)).ok());

  std::shared_ptr<const EngineSnapshot> held = engine.Snapshot();
  ASSERT_FALSE(held->clusters.empty());
  const std::vector<ExternalId> doomed = held->clusters[0];
  const uint64_t held_generation = held->generation;

  // Concurrent readers of the held snapshot while the removal runs.
  std::thread reader([&] {
    for (int i = 0; i < 1000; ++i) {
      if (held->clusters[0] != doomed) std::abort();
    }
  });
  ASSERT_TRUE(engine.Remove(doomed).ok());
  reader.join();

  // The held snapshot is immutable: same generation, same members.
  EXPECT_EQ(held->generation, held_generation);
  EXPECT_EQ(held->clusters[0], doomed);
  EXPECT_EQ(held->live_records, generated.dataset.num_records());
  // The engine has moved on: new generation, no trace of the removed ids.
  std::shared_ptr<const EngineSnapshot> now = engine.Snapshot();
  EXPECT_GT(now->generation, held_generation);
  EXPECT_EQ(now->live_records, generated.dataset.num_records() - 8);
  EXPECT_EQ(engine.Cluster(doomed[0]).status().code(),
            StatusCode::kNotFound);
}

// Satellite: SLO enforcement via budget. A hash budget of 1 stops the
// refinement pass after its first round at every thread count; the batch's
// records stay ingested but the engine keeps serving the previous
// generation until a Flush certifies them.
TEST(ResidentEngineTest, HashBudgetSloLeavesPreviousGenerationServing) {
  GeneratedDataset generated = test::MakePlantedDataset({9, 6, 3}, 15);
  for (int threads : {1, 2, 8}) {
    ResidentEngine engine(generated.rule, test::EngineOptions(threads, 2));
    ASSERT_TRUE(engine.Ingest(CopyRecords(generated.dataset, 0, 12)).ok());
    const uint64_t generation_before = engine.Snapshot()->generation;
    const auto top_before = engine.TopK(2);
    ASSERT_TRUE(top_before.ok());

    EngineBatchOptions slo;
    slo.budget.max_hashes = 1;
    auto strict = engine.Ingest(
        CopyRecords(generated.dataset, 12, generated.dataset.num_records()),
        slo);
    ASSERT_TRUE(strict.ok());
    EXPECT_EQ(strict.value().refinement,
              TerminationReason::kBudgetExhausted);
    EXPECT_EQ(strict.value().generation, generation_before);
    // Queries still see the previous certified answer, not a partial one.
    EXPECT_EQ(engine.Snapshot()->generation, generation_before);
    auto top_after = engine.TopK(2);
    ASSERT_TRUE(top_after.ok());
    EXPECT_EQ(top_after.value(), top_before.value());

    auto flushed = engine.Flush();
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(flushed.value().refinement, TerminationReason::kCompleted);
    EXPECT_GT(flushed.value().generation, generation_before);
    EXPECT_EQ(engine.Snapshot()->live_records,
              generated.dataset.num_records());
  }
}

// Satellite: SLO enforcement via deadline, made deterministic by injected
// latency at the hashing fault site (the same sites the robustness suite
// uses): the first hash round sleeps far past the deadline, so the pass
// reliably stops with kDeadline.
TEST(ResidentEngineTest, DeadlineSloInterruptsViaInjectedLatency) {
  GeneratedDataset generated = test::MakePlantedDataset({7, 5, 2}, 17);
  ResidentEngine engine(generated.rule, test::EngineOptions(2, 2));
  ASSERT_TRUE(engine.Ingest(CopyRecords(generated.dataset, 0, 9)).ok());
  const uint64_t generation_before = engine.Snapshot()->generation;

  FaultInjector injector;
  injector.InjectLatency(FaultSite::kHashApply, 20000);
  injector.InjectLatency(FaultSite::kPairwiseTile, 20000);
  {
    ScopedFaultInjector scoped(&injector);
    EngineBatchOptions slo;
    slo.budget.deadline_ms = 1;
    auto slow = engine.Ingest(
        CopyRecords(generated.dataset, 9, generated.dataset.num_records()),
        slo);
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(slow.value().refinement, TerminationReason::kDeadline);
    EXPECT_EQ(slow.value().generation, generation_before);
  }
  EXPECT_EQ(engine.Snapshot()->generation, generation_before);

  auto flushed = engine.Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed.value().refinement, TerminationReason::kCompleted);
  EXPECT_GT(engine.Snapshot()->generation, generation_before);
}

TEST(ResidentEngineTest, CountersTrackTheWholeLife) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 3, 1}, 21);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  auto first = engine.Ingest(CopyRecords(generated.dataset, 0, 6));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(
      engine.Ingest(CopyRecords(generated.dataset, 6,
                                generated.dataset.num_records()))
          .ok());
  ASSERT_TRUE(engine.Remove(std::vector<ExternalId>{0, 8}).ok());
  ASSERT_TRUE(engine.Update(1, generated.dataset.record(7)).ok());
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.batches, 4u);
  EXPECT_EQ(counters.ingested, 10u);  // 9 ingests + 1 update re-ingest
  EXPECT_EQ(counters.removed, 3u);    // 2 removals + 1 update removal
  EXPECT_EQ(counters.updated, 1u);
  EXPECT_EQ(counters.live_records, 7u);
  EXPECT_EQ(counters.internal_records, 10u);
  EXPECT_EQ(counters.refinements_completed, 4u);
  EXPECT_EQ(counters.refinements_interrupted, 0u);
  EXPECT_EQ(counters.generation, engine.Snapshot()->generation);
  EXPECT_GT(counters.total_hashes, 0u);
}

TEST(ResidentEngineTest, EngineReportCarriesSchemaCountersAndSnapshot) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 2}, 23);
  ResidentEngine engine(generated.rule, test::EngineOptions(1, 2));
  ASSERT_TRUE(engine.Ingest(AllRecords(generated.dataset)).ok());
  const std::string report = WriteEngineReportJson(engine);
  for (const char* needle :
       {"\"schema\":\"adalsh-engine-report-v1\"", "\"counters\"",
        "\"ingested\":6", "\"snapshot\"", "\"generation\":1",
        "\"cluster_sizes\":[4,2]", "\"refinement\"",
        "\"termination_reason\":\"completed\""}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle << "\n"
                                                      << report;
  }
}

}  // namespace
}  // namespace adalsh
