#include "clustering/clustering.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ClusteringTest, SortBySizeDescending) {
  Clustering clustering;
  clustering.clusters = {{1}, {2, 3, 4}, {5, 6}};
  clustering.SortBySizeDescending();
  EXPECT_EQ(clustering.clusters[0].size(), 3u);
  EXPECT_EQ(clustering.clusters[1].size(), 2u);
  EXPECT_EQ(clustering.clusters[2].size(), 1u);
}

TEST(ClusteringTest, SortIsStableOnTies) {
  Clustering clustering;
  clustering.clusters = {{1, 2}, {3, 4}, {5}};
  clustering.SortBySizeDescending();
  EXPECT_EQ(clustering.clusters[0], (std::vector<RecordId>{1, 2}));
  EXPECT_EQ(clustering.clusters[1], (std::vector<RecordId>{3, 4}));
}

TEST(ClusteringTest, TotalRecords) {
  Clustering clustering;
  clustering.clusters = {{1, 2}, {3}, {}};
  EXPECT_EQ(clustering.TotalRecords(), 3u);
}

TEST(ClusteringTest, UnionOfTopClusters) {
  Clustering clustering;
  clustering.clusters = {{4, 2}, {9, 1}, {7}};
  EXPECT_EQ(clustering.UnionOfTopClusters(1), (std::vector<RecordId>{2, 4}));
  EXPECT_EQ(clustering.UnionOfTopClusters(2),
            (std::vector<RecordId>{1, 2, 4, 9}));
  // k beyond the cluster count is clamped.
  EXPECT_EQ(clustering.UnionOfTopClusters(10).size(), 5u);
}

TEST(ClusteringTest, MaterializeFromForest) {
  ParentPointerForest forest;
  NodeId a = forest.MakeTree(1, 0);
  forest.AddLeaf(a, 2);
  NodeId b = forest.MakeTree(3, 0);
  Clustering clustering = MaterializeClusters(forest, {a, b});
  ASSERT_EQ(clustering.clusters.size(), 2u);
  EXPECT_EQ(clustering.clusters[0], (std::vector<RecordId>{1, 2}));
  EXPECT_EQ(clustering.clusters[1], (std::vector<RecordId>{3}));
}

}  // namespace
}  // namespace adalsh
