#include "core/budget_strategy.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(BudgetStrategyTest, ExponentialDefaults) {
  BudgetStrategy expo = BudgetStrategy::Exponential();
  // The paper's default: 20, 40, 80, ...
  EXPECT_EQ(expo.BudgetAt(0), 20);
  EXPECT_EQ(expo.BudgetAt(1), 40);
  EXPECT_EQ(expo.BudgetAt(2), 80);
  EXPECT_EQ(expo.BudgetAt(5), 640);
}

TEST(BudgetStrategyTest, ExponentialCustomMultiplier) {
  BudgetStrategy expo = BudgetStrategy::Exponential(10, 3.0);
  EXPECT_EQ(expo.BudgetAt(0), 10);
  EXPECT_EQ(expo.BudgetAt(1), 30);
  EXPECT_EQ(expo.BudgetAt(2), 90);
}

TEST(BudgetStrategyTest, LinearSchedule) {
  BudgetStrategy linear = BudgetStrategy::Linear(320);
  EXPECT_EQ(linear.BudgetAt(0), 320);
  EXPECT_EQ(linear.BudgetAt(1), 640);
  EXPECT_EQ(linear.BudgetAt(2), 960);
}

TEST(BudgetStrategyTest, SequenceBudgetsClampToMax) {
  BudgetStrategy expo = BudgetStrategy::Exponential();
  std::vector<int> budgets = expo.SequenceBudgets(5120);
  ASSERT_EQ(budgets.size(), 9u);  // 20..2560 then 5120
  EXPECT_EQ(budgets.front(), 20);
  EXPECT_EQ(budgets.back(), 5120);
  for (size_t i = 1; i < budgets.size(); ++i) {
    EXPECT_GT(budgets[i], budgets[i - 1]);
  }
}

TEST(BudgetStrategyTest, SequenceWithNonAlignedMax) {
  BudgetStrategy expo = BudgetStrategy::Exponential();
  std::vector<int> budgets = expo.SequenceBudgets(1000);
  // 20, 40, ..., 640, then clamp 1280 -> 1000.
  EXPECT_EQ(budgets.back(), 1000);
  EXPECT_EQ(budgets[budgets.size() - 2], 640);
}

TEST(BudgetStrategyTest, MaxSmallerThanStartGivesSingleFunction) {
  BudgetStrategy expo = BudgetStrategy::Exponential(20, 2.0);
  std::vector<int> budgets = expo.SequenceBudgets(10);
  ASSERT_EQ(budgets.size(), 1u);
  EXPECT_EQ(budgets[0], 10);
}

TEST(BudgetStrategyTest, ToStringShapes) {
  EXPECT_EQ(BudgetStrategy::Exponential().ToString(), "expo(start=20,x2)");
  EXPECT_EQ(BudgetStrategy::Linear(640).ToString(), "lin640");
}

}  // namespace
}  // namespace adalsh
