#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
  EXPECT_NE(SplitMix64(42), SplitMix64(43));
}

TEST(SplitMix64Test, MixesNearbyInputs) {
  // Consecutive inputs should differ in roughly half of their 64 bits.
  int total_flips = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    total_flips += __builtin_popcountll(SplitMix64(x) ^ SplitMix64(x + 1));
  }
  double mean_flips = total_flips / 100.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(DeriveSeedTest, DistinctStreams) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed(7, 3), DeriveSeed(7, 3));
}

TEST(RngTest, DeterministicSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextBelow(8)];
  for (int c : counts) {
    EXPECT_GT(c, 800);  // each bucket near 1000 of 8000
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUniformMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, items);
}

}  // namespace
}  // namespace adalsh
