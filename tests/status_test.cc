#include "util/status.h"

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad threshold");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad threshold");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad threshold");
}

TEST(StatusTest, AllFactoriesSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = Status::InvalidArgument("nope");
  EXPECT_DEATH(result.value(), "nope");
}

}  // namespace
}  // namespace adalsh
