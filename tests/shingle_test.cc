#include "text/shingle.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace adalsh {
namespace {

TEST(WordShinglesTest, UnigramsAreTokenHashes) {
  std::vector<uint64_t> shingles = WordShingles("alpha beta gamma", 1);
  ASSERT_EQ(shingles.size(), 3u);
}

TEST(WordShinglesTest, BigramCount) {
  EXPECT_EQ(WordShingles("a b c d", 2).size(), 3u);
  EXPECT_EQ(WordShingles("a b c d e", 3).size(), 3u);
}

TEST(WordShinglesTest, ShortDocumentGetsOneShingle) {
  EXPECT_EQ(WordShingles("single", 3).size(), 1u);
  EXPECT_EQ(WordShingles("two words", 3).size(), 1u);
}

TEST(WordShinglesTest, EmptyDocument) {
  EXPECT_TRUE(WordShingles("", 2).empty());
}

TEST(WordShinglesTest, SameTextSameShingles) {
  EXPECT_EQ(WordShingles("the quick brown fox", 2),
            WordShingles("The quick. Brown, FOX", 2));
}

TEST(WordShinglesTest, DifferentTextDiffers) {
  std::vector<uint64_t> a = WordShingles("the quick brown fox", 2);
  std::vector<uint64_t> b = WordShingles("the quick brown cat", 2);
  EXPECT_NE(a, b);
  // They still share the leading bigram.
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<uint64_t> shared;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(shared));
  EXPECT_FALSE(shared.empty());
}

TEST(CharShinglesTest, CountAndDeterminism) {
  EXPECT_EQ(CharShingles("abcdef", 4).size(), 3u);
  EXPECT_EQ(CharShingles("abcdef", 4), CharShingles("abcdef", 4));
}

TEST(CharShinglesTest, ShortTextGetsOneShingle) {
  EXPECT_EQ(CharShingles("ab", 4).size(), 1u);
}

TEST(CharShinglesTest, EmptyText) {
  EXPECT_TRUE(CharShingles("", 3).empty());
}

}  // namespace
}  // namespace adalsh
