// Asserts the FilterStats field invariants documented in
// core/filter_output.h, for every filtering method and at 1, 2 and 8
// threads. These are the contracts the obs run report and the per-round
// trace depend on.
#include "core/filter_output.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "core/streaming_adaptive_lsh.h"
#include "test_util.h"

namespace adalsh {
namespace {

// The first three invariants (round count, per-round sums, bucket count +
// conservation) for a finished run over `records_treated` records, with
// `num_functions` hashing functions available to the method.
void ExpectInvariants(const FilterStats& stats, size_t records_treated,
                      size_t num_functions) {
  EXPECT_EQ(stats.rounds, stats.round_records.size());

  uint64_t hashes = 0;
  uint64_t sims = 0;
  for (size_t i = 0; i < stats.round_records.size(); ++i) {
    const RoundRecord& record = stats.round_records[i];
    EXPECT_EQ(record.round, i + 1) << "round indices are 1-based, in order";
    hashes += record.hashes_computed;
    sims += record.pairwise_similarities;
    EXPECT_GE(record.wall_seconds, 0.0);
    EXPECT_GE(record.wall_seconds,
              record.hash_seconds + record.pairwise_seconds - 1e-9);
  }
  EXPECT_EQ(hashes, stats.hashes_computed);
  EXPECT_EQ(sims, stats.pairwise_similarities);

  EXPECT_EQ(stats.records_last_hashed_at.size(), num_functions);
  size_t accounted = std::accumulate(stats.records_last_hashed_at.begin(),
                                     stats.records_last_hashed_at.end(),
                                     stats.records_finished_by_pairwise);
  EXPECT_EQ(accounted, records_treated);
}

GeneratedDataset MakeDataset() {
  return test::MakePlantedDataset({30, 20, 10, 5, 2, 1, 1, 1}, 7);
}

AdaptiveLshConfig SmallConfig(int threads) {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 30;
  config.seed = 3;
  config.threads = threads;
  return config;
}

class FilterStatsTest : public testing::TestWithParam<int> {};

TEST_P(FilterStatsTest, AdaptiveLshHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  AdaptiveLsh adalsh(generated.dataset, generated.rule,
                     SmallConfig(GetParam()));
  FilterOutput output = adalsh.Run(3);
  ExpectInvariants(output.stats, generated.dataset.num_records(),
                   adalsh.sequence().size());
  EXPECT_GE(output.stats.rounds, 1u);  // at least the initial H_1 pass
}

TEST_P(FilterStatsTest, LshBlockingHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  LshBlockingConfig config;
  config.num_hashes = 320;
  config.seed = 3;
  config.threads = GetParam();
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(3);
  ExpectInvariants(output.stats, generated.dataset.num_records(),
                   /*num_functions=*/1);
  // LSH-X verifies with P, so the verified records sit in the P bucket.
  EXPECT_GT(output.stats.records_finished_by_pairwise, 0u);
}

TEST_P(FilterStatsTest, LshBlockingNoPairwiseHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  LshBlockingConfig config;
  config.num_hashes = 320;
  config.seed = 3;
  config.threads = GetParam();
  config.apply_pairwise = false;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(3);
  ExpectInvariants(output.stats, generated.dataset.num_records(),
                   /*num_functions=*/1);
  // LSH-X-nP never applies P: exactly one hash round, nothing in the P
  // bucket, every record last hashed by H_1.
  EXPECT_EQ(output.stats.rounds, 1u);
  EXPECT_EQ(output.stats.records_finished_by_pairwise, 0u);
  EXPECT_EQ(output.stats.pairwise_similarities, 0u);
}

TEST_P(FilterStatsTest, PairsBaselineHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  PairsBaseline pairs(generated.dataset, generated.rule, GetParam());
  FilterOutput output = pairs.Run(3);
  ExpectInvariants(output.stats, generated.dataset.num_records(),
                   /*num_functions=*/0);
  EXPECT_EQ(output.stats.rounds, 1u);
  EXPECT_EQ(output.stats.records_finished_by_pairwise,
            generated.dataset.num_records());
  EXPECT_EQ(output.stats.hashes_computed, 0u);
}

TEST_P(FilterStatsTest, StreamingTopKHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  StreamingAdaptiveLsh streaming(generated.dataset, generated.rule,
                                 SmallConfig(GetParam()));
  for (RecordId r = 0; r < generated.dataset.num_records(); ++r) {
    streaming.Add(r);
  }
  FilterOutput output = streaming.TopK(3);
  ExpectInvariants(output.stats, streaming.num_added(),
                   streaming.sequence().size());

  // A second TopK with no intervening Adds reuses verified clusters; the
  // invariants must hold for its (possibly empty) round set too.
  FilterOutput again = streaming.TopK(3);
  ExpectInvariants(again.stats, streaming.num_added(),
                   streaming.sequence().size());
}

TEST_P(FilterStatsTest, StreamingPartialIngestHoldsInvariants) {
  GeneratedDataset generated = MakeDataset();
  StreamingAdaptiveLsh streaming(generated.dataset, generated.rule,
                                 SmallConfig(GetParam()));
  size_t half = generated.dataset.num_records() / 2;
  for (RecordId r = 0; r < half; ++r) streaming.Add(r);
  FilterOutput output = streaming.TopK(2);
  // Only the added records are treated.
  ExpectInvariants(output.stats, half, streaming.sequence().size());
}

INSTANTIATE_TEST_SUITE_P(Threads, FilterStatsTest, testing::Values(1, 2, 8));

}  // namespace
}  // namespace adalsh
