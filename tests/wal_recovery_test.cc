// Differential crash-recovery coverage for the durable engine
// (docs/durability.md): reopening a data directory after an abrupt close must
// converge to state byte-identical to the from-scratch reference — across
// seeds, thread counts and shard counts, with and without checkpoints, and
// with torn or bit-flipped log tails. Also the failure semantics: permanent
// WAL errors degrade the engine to read-only without crashing, replay faults
// fail Open gracefully, and stale shard layouts are rejected. The storage
// layer's own unit tests live in wal_test.cc; the process-level kill-point
// matrix is tools/crash_smoke.sh.

#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/durability.h"
#include "engine/engine_report.h"
#include "io/checkpoint.h"
#include "io/wal.h"
#include "util/fault_injection.h"
#include "engine_harness.h"
#include "test_util.h"

namespace adalsh {
namespace {

/// mkdtemp-backed data directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/adalsh_recovery_test_XXXXXX";
    char* made = ::mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

DurableEngine::Options DurableOptions(
    int shards, int threads, int top_k, std::string dir,
    WalSyncPolicy sync = WalSyncPolicy::kNone, uint64_t checkpoint_every_n = 0,
    uint64_t seed = 3) {
  DurableEngine::Options options;
  options.engine = test::EngineOptions(threads, top_k, seed);
  options.shards = shards;
  options.data_dir = std::move(dir);
  options.sync = sync;
  options.checkpoint_every_n = checkpoint_every_n;
  return options;
}

std::vector<size_t> SizesForSeed(uint64_t seed) {
  std::vector<size_t> sizes = {12, 9, 7, 5, 3, 2, 1};
  sizes[seed % sizes.size()] += seed % 4;
  if (seed % 3 == 0) sizes.push_back(1);
  return sizes;
}

/// Records `first..first+count` of `dataset` as a fresh ingest batch.
std::vector<Record> Slice(const Dataset& dataset, size_t first, size_t count) {
  std::vector<Record> records;
  for (size_t i = 0; i < count; ++i) records.push_back(dataset.record(first + i));
  return records;
}

/// One-line recovery summary for failure messages.
std::string StatsDebug(const DurabilityStats& stats) {
  std::string out = "checkpoint_loaded=" +
                    std::to_string(stats.checkpoint_loaded) +
                    " checkpoint_seq=" + std::to_string(stats.checkpoint_seq) +
                    " frames_replayed=" + std::to_string(stats.frames_replayed) +
                    " frames_discarded=" +
                    std::to_string(stats.frames_discarded) +
                    " replay_apply_failures=" +
                    std::to_string(stats.replay_apply_failures) +
                    " log_truncated=" + std::to_string(stats.log_truncated);
  for (const std::string& warning : stats.recovery_warnings) {
    out += "\n  warning: " + warning;
  }
  return out;
}

TEST(WalRecoveryTest, FreshDirectoryOpensEmptyAndServes) {
  TempDir dir;
  auto engine = DurableEngine::Open(MatchRule::Leaf(0, 0.5),
                                    DurableOptions(0, 1, 3, dir.path()));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const DurabilityStats stats = engine.value()->durability_stats();
  EXPECT_FALSE(stats.checkpoint_loaded);
  EXPECT_EQ(stats.frames_replayed, 0u);
  EXPECT_FALSE(stats.log_truncated);
  EXPECT_FALSE(engine.value()->degraded());
  EXPECT_EQ(engine.value()->counters().live_records, 0u);

  GeneratedDataset generated = test::MakePlantedDataset({3}, 3);
  auto ingested = engine.value()->Ingest(Slice(generated.dataset, 0, 3));
  ASSERT_TRUE(ingested.ok());
  EXPECT_EQ(engine.value()->counters().live_records, 3u);
  EXPECT_GT(engine.value()->durability_stats().wal_frames_appended, 0u);
}

// The acceptance sweep: a randomized mutation history against the durable
// engine, an abrupt close (no flush, no checkpoint), and a reopen must yield
// a canonical snapshot byte-identical to the from-scratch reference — for
// every (shards, threads) combination on every seed. The reopened engine
// replays the WAL through the same confluence contract the differential
// harness certifies, so any divergence is a durability bug, not noise.
TEST(WalRecoveryTest, RecoveredEngineMatchesReferenceAcrossSeedsThreadsShards) {
  constexpr int kShardCounts[] = {0, 1, 4};
  constexpr int kThreadCounts[] = {1, 2, 8};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratedDataset generated =
        test::MakePlantedDataset(SizesForSeed(seed), seed);
    std::string reference;
    test::LiveMap live;
    bool have_reference = false;
    for (int shards : kShardCounts) {
      for (int threads : kThreadCounts) {
        TempDir dir;
        {
          auto engine = DurableEngine::Open(
              generated.rule,
              DurableOptions(shards, threads, 4, dir.path(),
                             WalSyncPolicy::kNone, /*checkpoint_every_n=*/0,
                             seed));
          ASSERT_TRUE(engine.ok()) << engine.status().ToString();
          test::LiveMap ran = test::RunRandomScript(engine.value().get(),
                                                    generated.dataset, seed);
          if (!have_reference) {
            live = std::move(ran);
            reference = test::ReferenceCanonical(generated.dataset,
                                                 generated.rule, live, 4);
            have_reference = true;
          } else {
            // The script is a pure function of (seed, dataset, knobs);
            // every engine shape must walk the identical id history.
            ASSERT_EQ(ran, live) << "seed " << seed;
          }
        }  // abrupt close: nothing flushed or checkpointed

        auto recovered = DurableEngine::Open(
            generated.rule,
            DurableOptions(shards, threads, 4, dir.path(),
                           WalSyncPolicy::kNone, /*checkpoint_every_n=*/0,
                           seed));
        ASSERT_TRUE(recovered.ok())
            << "seed " << seed << " shards " << shards << " threads "
            << threads << ": " << recovered.status().ToString();
        const DurabilityStats stats = recovered.value()->durability_stats();
        EXPECT_FALSE(stats.checkpoint_loaded);
        EXPECT_GT(stats.frames_replayed, 0u);
        EXPECT_EQ(stats.replay_apply_failures, 0u);
        ASSERT_TRUE(recovered.value()->Flush().ok());
        EXPECT_EQ(test::CanonicalSnapshot(*recovered.value()->Snapshot()),
                  reference)
            << "seed " << seed << " shards " << shards << " threads "
            << threads;
      }
    }
  }
}

TEST(WalRecoveryTest, ExplicitCheckpointTruncatesLogsAndSeedsRecovery) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset(SizesForSeed(7), 7);
  test::LiveMap live;
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(4, 2, 4, dir.path()));
    ASSERT_TRUE(engine.ok());
    live = test::RunRandomScript(engine.value().get(), generated.dataset, 7);
    ASSERT_TRUE(engine.value()->Checkpoint().ok());
    EXPECT_EQ(engine.value()->durability_stats().checkpoints_written, 1u);
    // The checkpoint superseded every logged frame.
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(std::filesystem::file_size(
                    dir.file("wal-" + std::to_string(s) + ".log")),
                0u);
    }
  }
  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(4, 2, 4, dir.path()));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const DurabilityStats stats = recovered.value()->durability_stats();
  EXPECT_TRUE(stats.checkpoint_loaded);
  EXPECT_GT(stats.checkpoint_seq, 0u);
  EXPECT_EQ(stats.frames_replayed, 0u);
  ASSERT_TRUE(recovered.value()->Flush().ok());
  EXPECT_EQ(test::CanonicalSnapshot(*recovered.value()->Snapshot()),
            test::ReferenceCanonical(generated.dataset, generated.rule, live,
                                     4));
}

TEST(WalRecoveryTest, CheckpointPlusLogTailReplayMatchesReference) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset(SizesForSeed(11), 11);
  test::LiveMap live;
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(4, 2, 4, dir.path()));
    ASSERT_TRUE(engine.ok());
    live = test::RunRandomScript(engine.value().get(), generated.dataset, 11);
    ASSERT_TRUE(engine.value()->Checkpoint().ok());
    // Post-checkpoint tail: remove one live id, then the abrupt close.
    const ExternalId victim = live.begin()->first;
    std::vector<ExternalId> ids = {victim};
    ASSERT_TRUE(engine.value()->Remove(ids).ok());
    live.erase(victim);
  }
  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(4, 2, 4, dir.path()));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const DurabilityStats stats = recovered.value()->durability_stats();
  EXPECT_TRUE(stats.checkpoint_loaded);
  EXPECT_EQ(stats.frames_replayed, 1u);  // exactly the tail remove
  ASSERT_TRUE(recovered.value()->Flush().ok());
  EXPECT_EQ(test::CanonicalSnapshot(*recovered.value()->Snapshot()),
            test::ReferenceCanonical(generated.dataset, generated.rule, live,
                                     4));
}

TEST(WalRecoveryTest, AutomaticCheckpointEveryNMutations) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({8}, 5);
  {
    auto engine = DurableEngine::Open(
        generated.rule, DurableOptions(0, 1, 3, dir.path(),
                                       WalSyncPolicy::kBatch,
                                       /*checkpoint_every_n=*/3));
    ASSERT_TRUE(engine.ok());
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, i, 1)).ok());
    }
    EXPECT_GE(engine.value()->durability_stats().checkpoints_written, 2u);
  }
  auto recovered = DurableEngine::Open(
      generated.rule, DurableOptions(0, 1, 3, dir.path(),
                                     WalSyncPolicy::kBatch,
                                     /*checkpoint_every_n=*/3));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value()->durability_stats().checkpoint_loaded);
  EXPECT_EQ(recovered.value()->counters().live_records, 8u);
}

TEST(WalRecoveryTest, ReopenedSessionsContinueIdAndSeqSpaces) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({12}, 9);
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(0, 1, 3, dir.path()));
    ASSERT_TRUE(engine.ok());
    auto ingested = engine.value()->Ingest(Slice(generated.dataset, 0, 5));
    ASSERT_TRUE(ingested.ok());
    EXPECT_EQ(ingested.value().assigned_ids.back(), 4u);
  }
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(0, 1, 3, dir.path()));
    ASSERT_TRUE(engine.ok());
    // External ids must continue past the recovered history, never reuse.
    auto ingested = engine.value()->Ingest(Slice(generated.dataset, 5, 5));
    ASSERT_TRUE(ingested.ok());
    EXPECT_EQ(ingested.value().assigned_ids.front(), 5u);
    std::vector<ExternalId> ids = {2};
    ASSERT_TRUE(engine.value()->Remove(ids).ok());
  }
  auto engine = DurableEngine::Open(generated.rule,
                                    DurableOptions(0, 1, 3, dir.path()));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->counters().live_records, 9u);
  auto cluster = engine.value()->Cluster(9);
  EXPECT_TRUE(cluster.ok());
}

TEST(WalRecoveryTest, GarbageTailIsTruncatedWithoutLosingMutations) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset(SizesForSeed(4), 4);
  test::LiveMap live;
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(0, 2, 4, dir.path()));
    ASSERT_TRUE(engine.ok());
    live = test::RunRandomScript(engine.value().get(), generated.dataset, 4);
  }
  // Torn bytes after the last complete frame: the post-crash shape when the
  // process died mid-append. Recovery keeps every acked mutation.
  {
    std::ofstream out(dir.file("wal-0.log"),
                      std::ios::binary | std::ios::app);
    out << "torn tail bytes that are not a frame";
  }
  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(0, 2, 4, dir.path()));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const DurabilityStats stats = recovered.value()->durability_stats();
  EXPECT_TRUE(stats.log_truncated);
  ASSERT_FALSE(stats.recovery_warnings.empty());
  EXPECT_NE(stats.recovery_warnings[0].find("invalid frame"),
            std::string::npos);
  ASSERT_TRUE(recovered.value()->Flush().ok());
  EXPECT_EQ(test::CanonicalSnapshot(*recovered.value()->Snapshot()),
            test::ReferenceCanonical(generated.dataset, generated.rule, live,
                                     4));
}

TEST(WalRecoveryTest, BitFlippedTailDropsOnlyTheDamagedSuffix) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({8}, 6);
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(0, 1, 3, dir.path()));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 3)).ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 3, 2)).ok());
  }
  // Flip the last byte on disk: the second ingest's frame fails its CRC, the
  // first survives untouched.
  const std::string path = dir.file("wal-0.log");
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 0);
    file.seekg(size - 1);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(size - 1);
    file.write(&byte, 1);
  }
  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(0, 1, 3, dir.path()));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const DurabilityStats stats = recovered.value()->durability_stats();
  EXPECT_TRUE(stats.log_truncated);
  EXPECT_EQ(stats.frames_replayed, 1u);
  EXPECT_EQ(recovered.value()->counters().live_records, 3u);
}

TEST(WalRecoveryTest, IncompleteMultiShardMutationEndsReplayablePrefix) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({13}, 5);
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(4, 2, 4, dir.path()));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 3)).ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 3, 10)).ok());
  }
  // Drop one shard's sub-frame of the second mutation (seq 2): the loss an
  // unsynced tail produces on exactly one disk. The whole mutation must be
  // discarded — a partially applied batch would be a torn state.
  bool dropped = false;
  for (int s = 0; s < 4 && !dropped; ++s) {
    const std::string path = dir.file("wal-" + std::to_string(s) + ".log");
    auto read = ReadMutationLog(path);
    ASSERT_TRUE(read.ok());
    if (read.value().frames.empty() || read.value().frames.back().seq != 2) {
      continue;
    }
    const size_t frame_bytes =
        EncodeWalFrame(read.value().frames.back()).size();
    std::filesystem::resize_file(path,
                                 read.value().valid_bytes - frame_bytes);
    dropped = true;
  }
  ASSERT_TRUE(dropped);

  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(4, 2, 4, dir.path()));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->durability_stats().frames_replayed, 1u)
      << StatsDebug(recovered.value()->durability_stats());
  // The sharded engine's merged live count publishes at the flush barrier.
  ASSERT_TRUE(recovered.value()->Flush().ok());
  EXPECT_EQ(recovered.value()->counters().live_records, 3u)
      << StatsDebug(recovered.value()->durability_stats());
}

TEST(WalRecoveryTest, PermanentAppendFailureDegradesToReadOnly) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({6}, 8);
  auto engine = DurableEngine::Open(generated.rule,
                                    DurableOptions(0, 1, 3, dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 4)).ok());

  {
    FaultInjector injector;
    injector.FailAt(FaultSite::kWalAppend, 1,
                    Status::FailedPrecondition("injected dead disk"),
                    /*repeat=*/0);
    ScopedFaultInjector installed(&injector);
    auto ingested = engine.value()->Ingest(Slice(generated.dataset, 4, 2));
    ASSERT_FALSE(ingested.ok());
    EXPECT_EQ(ingested.status().code(), StatusCode::kFailedPrecondition);
  }

  // Degradation is sticky (the log's committed offset can no longer be
  // trusted to advance) and never crashes: mutations fail fast, queries keep
  // serving the last applied state.
  EXPECT_TRUE(engine.value()->degraded());
  EXPECT_TRUE(engine.value()->durability_stats().wal_degraded);
  std::vector<ExternalId> ids = {0};
  EXPECT_EQ(engine.value()->Remove(ids).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.value()->Flush().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.value()->Checkpoint().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.value()->counters().live_records, 4u);
  auto topk = engine.value()->TopK(2);
  EXPECT_TRUE(topk.ok());
}

TEST(WalRecoveryTest, PermanentSyncFailureUnderAlwaysDegrades) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({6}, 8);
  auto engine = DurableEngine::Open(
      generated.rule,
      DurableOptions(0, 1, 3, dir.path(), WalSyncPolicy::kAlways));
  ASSERT_TRUE(engine.ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalSync, 1,
                  Status::FailedPrecondition("injected fsync dead"),
                  /*repeat=*/0);
  ScopedFaultInjector installed(&injector);
  EXPECT_FALSE(engine.value()->Ingest(Slice(generated.dataset, 0, 2)).ok());
  EXPECT_TRUE(engine.value()->degraded());
}

TEST(WalRecoveryTest, TransientSyncFailureIsRetriedInvisibly) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({6}, 8);
  auto engine = DurableEngine::Open(
      generated.rule,
      DurableOptions(0, 1, 3, dir.path(), WalSyncPolicy::kAlways));
  ASSERT_TRUE(engine.ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalSync, 1,
                  Status::FailedPrecondition("injected fsync EIO"),
                  /*repeat=*/2);
  ScopedFaultInjector installed(&injector);
  ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 2)).ok());
  EXPECT_FALSE(engine.value()->degraded());
  EXPECT_EQ(engine.value()->durability_stats().wal_sync_retries, 2u);
}

TEST(WalRecoveryTest, ReplayFaultFailsOpenGracefully) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({6}, 8);
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(0, 1, 3, dir.path()));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 3)).ok());
  }
  FaultInjector injector;
  injector.FailAt(FaultSite::kRecoveryReplay, 1,
                  Status::FailedPrecondition("injected replay error"));
  ScopedFaultInjector installed(&injector);
  auto recovered = DurableEngine::Open(generated.rule,
                                       DurableOptions(0, 1, 3, dir.path()));
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WalRecoveryTest, StaleShardLayoutIsRejected) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({8}, 2);
  {
    auto engine = DurableEngine::Open(generated.rule,
                                      DurableOptions(4, 1, 3, dir.path()));
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 8)).ok());
    ASSERT_TRUE(engine.value()->Checkpoint().ok());
  }
  for (int wrong_shards : {0, 2}) {
    auto reopened = DurableEngine::Open(
        generated.rule, DurableOptions(wrong_shards, 1, 3, dir.path()));
    ASSERT_FALSE(reopened.ok()) << "shards=" << wrong_shards;
    EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(reopened.status().message().find("stale shard layout"),
              std::string::npos);
  }
  // The original layout still opens.
  auto reopened = DurableEngine::Open(generated.rule,
                                      DurableOptions(4, 1, 3, dir.path()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The sharded engine's merged live count publishes at the flush barrier.
  ASSERT_TRUE(reopened.value()->Flush().ok());
  EXPECT_EQ(reopened.value()->counters().live_records, 8u)
      << StatsDebug(reopened.value()->durability_stats());
}

TEST(WalRecoveryTest, CheckpointShardMismatchIsRejectedWithoutLogs) {
  TempDir dir;
  CheckpointData data;
  data.last_seq = 3;
  data.next_external_id = 10;
  data.shards = 2;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), data).ok());
  auto opened = DurableEngine::Open(MatchRule::Leaf(0, 0.5),
                                    DurableOptions(4, 1, 3, dir.path()));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(opened.status().message().find("stale shard layout"),
            std::string::npos);
}

TEST(WalRecoveryTest, EngineReportCarriesDurabilityPlane) {
  TempDir dir;
  GeneratedDataset generated = test::MakePlantedDataset({5}, 3);
  auto engine = DurableEngine::Open(generated.rule,
                                    DurableOptions(0, 1, 3, dir.path()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->Ingest(Slice(generated.dataset, 0, 5)).ok());
  const std::string report = WriteEngineReportJson(*engine.value());
  EXPECT_NE(report.find("\"durability\""), std::string::npos);
  EXPECT_NE(report.find("\"wal_frames_appended\""), std::string::npos);
  EXPECT_NE(report.find("\"wal_degraded\":false"), std::string::npos);
  EXPECT_NE(report.find("\"recovery\""), std::string::npos);
}

}  // namespace
}  // namespace adalsh
