#include "datagen/zipf.h"

#include <numeric>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ZipfTest, TotalIsExact) {
  for (double exponent : {0.75, 1.05, 1.1, 1.2}) {
    std::vector<size_t> sizes = ZipfClusterSizes(500, 10000, exponent);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), size_t{0}), 10000u)
        << "exponent " << exponent;
  }
}

TEST(ZipfTest, SizesDescendAndPositive) {
  std::vector<size_t> sizes = ZipfClusterSizes(100, 2000, 1.1);
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i], 1u);
    if (i > 0) {
      EXPECT_LE(sizes[i], sizes[i - 1] + 1);
    }
  }
}

TEST(ZipfTest, HigherExponentConcentratesTop) {
  // The Section 7.4.2 property: higher exponent -> larger top entities.
  std::vector<size_t> flat = ZipfClusterSizes(500, 10000, 1.05);
  std::vector<size_t> steep = ZipfClusterSizes(500, 10000, 1.2);
  EXPECT_GT(steep[0], flat[0]);
  EXPECT_GT(steep[1], flat[1]);
}

TEST(ZipfTest, RatioRoughlyPowerLaw) {
  std::vector<size_t> sizes = ZipfClusterSizes(500, 100000, 1.0);
  // size_1 / size_2 ~ 2 for exponent 1.
  double ratio = static_cast<double>(sizes[0]) / sizes[1];
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
}

TEST(ZipfTest, AllSingletonsWhenTotalEqualsEntities) {
  std::vector<size_t> sizes = ZipfClusterSizes(50, 50, 1.1);
  for (size_t s : sizes) EXPECT_EQ(s, 1u);
}

TEST(ZipfTest, SingleEntityTakesAll) {
  std::vector<size_t> sizes = ZipfClusterSizes(1, 123, 1.5);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 123u);
}

}  // namespace
}  // namespace adalsh
