#include "core/scheme_optimizer.h"

#include <gtest/gtest.h>

#include "util/numeric.h"

namespace adalsh {
namespace {

OptimizerUnit LinearUnit(double threshold, int min_w = 1) {
  OptimizerUnit unit;
  unit.p = LinearCollisionModel();
  unit.threshold = threshold;
  unit.min_w = min_w;
  return unit;
}

TEST(OptimizeSingleTest, Example5Setting) {
  // Example 5: cosine distance, d_thr = 15/180, eps = 0.001, budget 2100.
  // Under Eq. (1)-(3) the optimum is the largest feasible w (~27-30); the
  // infeasible side is large w like 60 (collision prob at the threshold
  // ~0.17 for (60, 35)).
  OptimizerConfig config;
  WzScheme scheme =
      OptimizeSingleScheme(LinearUnit(15.0 / 180.0), 2100, config);
  EXPECT_TRUE(scheme.constraint_met);
  EXPECT_GE(scheme.w, 20);
  EXPECT_LE(scheme.w, 35);
  EXPECT_EQ(scheme.budget(), 2100);
  // The chosen scheme satisfies the threshold constraint.
  double prob = SchemeCollisionProbabilityWithRemainder(
      LinearCollisionModel(), 15.0 / 180.0, scheme.w, scheme.z, scheme.w_rem);
  EXPECT_GE(prob, 1.0 - config.epsilon);
}

TEST(OptimizeSingleTest, InfeasibleCandidatesExcluded) {
  // (60, 35) violates the Example 5 constraint; the optimizer must not
  // return any w whose scheme misses it.
  OptimizerConfig config;
  WzScheme scheme =
      OptimizeSingleScheme(LinearUnit(15.0 / 180.0), 2100, config);
  EXPECT_LT(SchemeCollisionProbability(LinearCollisionModel(), 15.0 / 180.0,
                                       60, 35),
            1.0 - config.epsilon);
  EXPECT_NE(scheme.w, 60);
}

TEST(OptimizeSingleTest, LargerBudgetNoWorseObjective) {
  OptimizerConfig config;
  WzScheme small = OptimizeSingleScheme(LinearUnit(0.1), 320, config);
  WzScheme large = OptimizeSingleScheme(LinearUnit(0.1), 2560, config);
  EXPECT_LE(large.objective, small.objective + 1e-9);
}

TEST(OptimizeSingleTest, BudgetFullyConsumed) {
  OptimizerConfig config;
  for (int budget : {20, 37, 100, 640, 1280}) {
    WzScheme scheme = OptimizeSingleScheme(LinearUnit(0.2), budget, config);
    EXPECT_EQ(scheme.budget(), budget) << "budget " << budget;
  }
}

TEST(OptimizeSingleTest, TightThresholdLooseBudgetFallsBack) {
  // A very loose threshold (large d_thr) with a small budget cannot satisfy
  // eps; the optimizer degrades to the most conservative feasible w.
  OptimizerConfig config;
  WzScheme scheme = OptimizeSingleScheme(LinearUnit(0.9), 8, config);
  if (!scheme.constraint_met) {
    EXPECT_EQ(scheme.w, 1);
  }
}

TEST(OptimizeSingleTest, MinWRespected) {
  OptimizerConfig config;
  WzScheme scheme =
      OptimizeSingleScheme(LinearUnit(0.05, /*min_w=*/10), 640, config);
  EXPECT_GE(scheme.w, 10);
}

TEST(OptimizeAndTest, TwoUnitGroupFeasible) {
  // Cora-like thresholds: 0.3 and 0.8.
  OptimizerConfig config;
  GroupScheme group = OptimizeAndGroup(
      {LinearUnit(0.3), LinearUnit(0.8)}, 1280, config);
  ASSERT_EQ(group.w.size(), 2u);
  EXPECT_GE(group.z, 1);
  EXPECT_LE(group.budget(), 1280);
  if (group.constraint_met) {
    // Verify the constraint at the thresholds directly.
    double product = PowInt(0.7, group.w[0]) * PowInt(0.2, group.w[1]);
    double prob = 1.0 - PowInt(1.0 - product, group.z);
    EXPECT_GE(prob, 1.0 - config.epsilon);
  }
}

TEST(OptimizeAndTest, LooseUnitGetsFewHashes) {
  // The 0.8-threshold unit retains collision prob 0.2 per hash; piling
  // hashes on it kills the constraint, so it should get far fewer than the
  // tight 0.1-threshold unit gets tables' worth of sharpness.
  OptimizerConfig config;
  GroupScheme group =
      OptimizeAndGroup({LinearUnit(0.1), LinearUnit(0.8)}, 2000, config);
  if (group.constraint_met) {
    EXPECT_GE(group.w[0], group.w[1]);
  }
}

TEST(OptimizeCompositeTest, SingleGroupMatchesAndProgram) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.2});
  structure.groups = {{0}};
  OptimizerConfig config;
  CompositeScheme scheme =
      OptimizeComposite(structure, 640, config, nullptr);
  ASSERT_EQ(scheme.groups.size(), 1u);
  EXPECT_EQ(scheme.groups[0].budget(), 640);
}

TEST(OptimizeCompositeTest, PreviousSchemeBoundsW) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.1});
  structure.groups = {{0}};
  OptimizerConfig config;
  CompositeScheme first = OptimizeComposite(structure, 80, config, nullptr);
  CompositeScheme second = OptimizeComposite(structure, 160, config, &first);
  EXPECT_GE(second.groups[0].w[0], first.groups[0].w[0]);
}

TEST(OptimizeCompositeTest, OrSplitsBudgetAcrossGroups) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.2});
  structure.units.push_back({{1}, {1.0}, 0.3});
  structure.groups = {{0}, {1}};
  OptimizerConfig config;
  CompositeScheme scheme =
      OptimizeComposite(structure, 1000, config, nullptr);
  ASSERT_EQ(scheme.groups.size(), 2u);
  EXPECT_GE(scheme.groups[0].budget(), 1);
  EXPECT_GE(scheme.groups[1].budget(), 1);
  EXPECT_LE(scheme.budget(), 1000);
}

TEST(CompositeCollisionProbabilityTest, MonotoneInDistance) {
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.2});
  structure.groups = {{0}};
  OptimizerConfig config;
  CompositeScheme scheme = OptimizeComposite(structure, 320, config, nullptr);
  double last = 1.1;
  for (double x : {0.0, 0.1, 0.2, 0.4, 0.8, 1.0}) {
    double prob = CompositeCollisionProbability(structure, scheme, {x});
    EXPECT_LE(prob, last + 1e-12);
    last = prob;
  }
  EXPECT_NEAR(CompositeCollisionProbability(structure, scheme, {0.0}), 1.0,
              1e-9);
}

TEST(CompositeCollisionProbabilityTest, OrGroupsCombine) {
  // Two groups: overall probability must exceed each group alone.
  RuleHashStructure structure;
  structure.units.push_back({{0}, {1.0}, 0.2});
  structure.units.push_back({{1}, {1.0}, 0.2});
  structure.groups = {{0}, {1}};
  CompositeScheme scheme;
  GroupScheme g;
  g.w = {4};
  g.z = 10;
  scheme.groups = {g, g};
  double both = CompositeCollisionProbability(structure, scheme, {0.3, 0.3});
  double one_far = CompositeCollisionProbability(structure, scheme, {0.3, 1.0});
  EXPECT_GT(both, one_far);
  EXPECT_GT(one_far, 0.0);
}

}  // namespace
}  // namespace adalsh
