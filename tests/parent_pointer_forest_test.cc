#include "clustering/parent_pointer_forest.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace adalsh {
namespace {

TEST(ForestTest, MakeTreeSingleLeaf) {
  ParentPointerForest forest;
  NodeId leaf = kInvalidNode;
  NodeId root = forest.MakeTree(7, /*producer=*/2, &leaf);
  EXPECT_TRUE(forest.IsRoot(root));
  EXPECT_EQ(forest.LeafCount(root), 1u);
  EXPECT_EQ(forest.Producer(root), 2);
  EXPECT_EQ(forest.RecordAt(leaf), 7u);
  EXPECT_EQ(forest.FindRoot(leaf), root);
  EXPECT_EQ(forest.Leaves(root), (std::vector<RecordId>{7}));
}

TEST(ForestTest, AddLeafGrowsChain) {
  ParentPointerForest forest;
  NodeId root = forest.MakeTree(1, 0);
  forest.AddLeaf(root, 2);
  NodeId leaf3 = forest.AddLeaf(root, 3);
  EXPECT_EQ(forest.LeafCount(root), 3u);
  EXPECT_EQ(forest.Leaves(root), (std::vector<RecordId>{1, 2, 3}));
  EXPECT_EQ(forest.FindRoot(leaf3), root);
}

TEST(ForestTest, MergeConcatenatesLeafChains) {
  ParentPointerForest forest;
  NodeId a = forest.MakeTree(1, 0);
  forest.AddLeaf(a, 2);
  forest.AddLeaf(a, 3);
  NodeId b = forest.MakeTree(4, 0);
  forest.AddLeaf(b, 5);
  NodeId merged = forest.Merge(a, b);
  EXPECT_EQ(merged, a);  // union by size: larger root survives
  EXPECT_EQ(forest.LeafCount(merged), 5u);
  std::vector<RecordId> leaves = forest.Leaves(merged);
  EXPECT_EQ(leaves, (std::vector<RecordId>{1, 2, 3, 4, 5}));
}

TEST(ForestTest, MergePicksLargerRoot) {
  ParentPointerForest forest;
  NodeId small = forest.MakeTree(1, 0);
  NodeId big = forest.MakeTree(2, 0);
  forest.AddLeaf(big, 3);
  EXPECT_EQ(forest.Merge(small, big), big);
}

TEST(ForestTest, FindRootAfterChainedMerges) {
  ParentPointerForest forest;
  std::vector<NodeId> leaves(8);
  std::vector<NodeId> roots;
  for (int i = 0; i < 8; ++i) {
    roots.push_back(forest.MakeTree(i, 0, &leaves[i]));
  }
  // Merge pairwise, then the pairs, then the quads.
  NodeId r01 = forest.Merge(roots[0], roots[1]);
  NodeId r23 = forest.Merge(roots[2], roots[3]);
  NodeId r45 = forest.Merge(roots[4], roots[5]);
  NodeId r67 = forest.Merge(roots[6], roots[7]);
  NodeId r03 = forest.Merge(r01, r23);
  NodeId r47 = forest.Merge(r45, r67);
  NodeId all = forest.Merge(r03, r47);
  EXPECT_EQ(forest.LeafCount(all), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(forest.FindRoot(leaves[i]), all);
  }
  std::vector<RecordId> collected = forest.Leaves(all);
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected,
            (std::vector<RecordId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ForestTest, ProducerTagSurvivesMerge) {
  ParentPointerForest forest;
  NodeId a = forest.MakeTree(1, 3);
  forest.AddLeaf(a, 2);
  NodeId b = forest.MakeTree(3, 3);
  EXPECT_EQ(forest.Producer(forest.Merge(a, b)), 3);
}

TEST(ForestTest, SetProducer) {
  ParentPointerForest forest;
  NodeId root = forest.MakeTree(1, 0);
  forest.SetProducer(root, kProducerPairwise);
  EXPECT_EQ(forest.Producer(root), kProducerPairwise);
}

TEST(ForestDeathTest, MergeWithSelfAborts) {
  ParentPointerForest forest;
  NodeId root = forest.MakeTree(1, 0);
  EXPECT_DEATH(forest.Merge(root, root), "itself");
}

TEST(ForestDeathTest, NonRootOperationsAbort) {
  ParentPointerForest forest;
  NodeId leaf = kInvalidNode;
  forest.MakeTree(1, 0, &leaf);
  EXPECT_DEATH(forest.LeafCount(leaf), "");
  EXPECT_DEATH(forest.AddLeaf(leaf, 2), "root");
}

TEST(ForestTest, UnionBySizeKeepsChainsLogarithmic) {
  // The O(log |C_r|) root-finding claim of Appendix B.2: after n-1 merges in
  // the worst (pairwise, balanced-adversarial) order, no parent chain
  // exceeds ~log2(n) + a small constant.
  constexpr int kRecords = 4096;
  ParentPointerForest forest;
  std::vector<NodeId> leaf(kRecords);
  for (int r = 0; r < kRecords; ++r) forest.MakeTree(r, 0, &leaf[r]);
  // Balanced tournament merging — the adversarial pattern for union-by-size
  // (every merge joins equal-size trees, growing depth each round).
  for (int span = 1; span < kRecords; span *= 2) {
    for (int r = 0; r + span < kRecords; r += 2 * span) {
      forest.Merge(forest.FindRoot(leaf[r]), forest.FindRoot(leaf[r + span]));
    }
  }
  // Longest parent chain across all leaves stays logarithmic.
  size_t longest = 0;
  for (int r = 0; r < kRecords; ++r) {
    longest = std::max(longest, forest.DepthForTest(leaf[r]));
  }
  EXPECT_LE(longest, 14u);  // log2(4096) = 12, plus slack
  // Structural check: 2n nodes total (one root + one leaf per original
  // tree; union-by-size allocates nothing on merge).
  EXPECT_EQ(forest.num_nodes(), static_cast<size_t>(2 * kRecords));
  EXPECT_EQ(forest.LeafCount(forest.FindRoot(leaf[0])),
            static_cast<uint32_t>(kRecords));
}

/// Property test: random unions behave exactly like a reference union-find —
/// leaf chains always enumerate the current partition.
TEST(ForestPropertyTest, RandomMergesMatchReferencePartition) {
  constexpr int kRecords = 200;
  Rng rng(77);
  ParentPointerForest forest;
  std::vector<NodeId> leaf(kRecords);
  std::vector<int> reference(kRecords);  // reference: naive component ids
  for (int r = 0; r < kRecords; ++r) {
    forest.MakeTree(r, 0, &leaf[r]);
    reference[r] = r;
  }
  for (int step = 0; step < 300; ++step) {
    int a = static_cast<int>(rng.NextBelow(kRecords));
    int b = static_cast<int>(rng.NextBelow(kRecords));
    NodeId ra = forest.FindRoot(leaf[a]);
    NodeId rb = forest.FindRoot(leaf[b]);
    if (ra != rb) {
      forest.Merge(ra, rb);
      int old_id = reference[b], new_id = reference[a];
      for (int& id : reference) {
        if (id == old_id) id = new_id;
      }
    }
    // Spot-check: the component of `a` matches the reference component.
    NodeId root = forest.FindRoot(leaf[a]);
    std::vector<RecordId> members = forest.Leaves(root);
    std::set<RecordId> expected;
    for (int r = 0; r < kRecords; ++r) {
      if (reference[r] == reference[a]) expected.insert(r);
    }
    EXPECT_EQ(members.size(), expected.size());
    for (RecordId m : members) EXPECT_TRUE(expected.count(m)) << m;
  }
}

}  // namespace
}  // namespace adalsh
