#include "eval/speedup.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace adalsh {
namespace {

TEST(SpeedupModelTest, TimeFormulas) {
  SpeedupModel model(/*cost_per_similarity=*/2.0);
  EXPECT_DOUBLE_EQ(model.WholeTime(100), 2.0 * 4950);
  EXPECT_DOUBLE_EQ(model.ReducedTime(10), 2.0 * 45);
  EXPECT_DOUBLE_EQ(model.RecoveryTime(10, 100), 2.0 * 10 * 90);
}

TEST(SpeedupModelTest, SpeedupFormulas) {
  SpeedupModel model(1.0);
  // Whole = 4950; filtering 50s; reduced = 45 -> speedup ~52.1.
  double without = model.SpeedupWithoutRecovery(50.0, 100, 10);
  EXPECT_NEAR(without, 4950.0 / (50.0 + 45.0), 1e-9);
  double with = model.SpeedupWithRecovery(50.0, 100, 10);
  EXPECT_NEAR(with, 4950.0 / (50.0 + 45.0 + 900.0), 1e-9);
  EXPECT_LT(with, without);
}

TEST(SpeedupModelTest, BiggerOutputLowersSpeedup) {
  SpeedupModel model(1.0);
  EXPECT_GT(model.SpeedupWithoutRecovery(1.0, 1000, 50),
            model.SpeedupWithoutRecovery(1.0, 1000, 500));
}

TEST(SpeedupModelTest, QuadraticGrowthFavorsFiltering) {
  // The paper's scaling claim: with the top-k output staying near-constant
  // while the dataset grows, WholeTime grows quadratically but filtering
  // (linear) plus ReducedTime (constant) do not — speedup rises.
  SpeedupModel model(1.0);
  double small = model.SpeedupWithoutRecovery(10.0, 1000, 100);
  double large = model.SpeedupWithoutRecovery(80.0, 8000, 100);
  EXPECT_GT(large, 10 * small);
}

TEST(SpeedupModelTest, MeasureIsPositive) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 5}, 1);
  SpeedupModel model =
      SpeedupModel::Measure(generated.dataset, generated.rule, 50, 2);
  EXPECT_GT(model.cost_per_similarity(), 0.0);
  EXPECT_LT(model.cost_per_similarity(), 1e-3);
}

TEST(DatasetReductionTest, Percentage) {
  EXPECT_DOUBLE_EQ(DatasetReductionPercent(100, 1000), 10.0);
  EXPECT_DOUBLE_EQ(DatasetReductionPercent(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(DatasetReductionPercent(10, 10), 100.0);
}

}  // namespace
}  // namespace adalsh
