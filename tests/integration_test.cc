// End-to-end tests: the full filtering pipeline (adaLSH, LSH-X, Pairs) on
// the three generated workload families, checked against ground truth with
// the paper's metrics.

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "datagen/cora_like.h"
#include "datagen/popular_images.h"
#include "datagen/spotsigs_like.h"
#include "eval/metrics.h"
#include "eval/recovery.h"

namespace adalsh {
namespace {

AdaptiveLshConfig FastAdaptiveConfig() {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 1280;
  config.calibration_samples = 30;
  config.seed = 5;
  return config;
}

TEST(IntegrationTest, CoraLikeAdaptiveMatchesGroundTruth) {
  CoraLikeConfig data_config;
  data_config.num_entities = 80;
  data_config.num_records = 600;
  data_config.seed = 1;
  GeneratedDataset generated = GenerateCoraLike(data_config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput output = adalsh.Run(5);
  SetAccuracy gold = GoldAccuracy(output.clusters, truth, 5);
  EXPECT_GT(gold.f1, 0.85) << "P=" << gold.precision << " R=" << gold.recall;
}

TEST(IntegrationTest, CoraLikeAdaptiveMatchesPairs) {
  // adaLSH's headline accuracy claim: same outcome as exact Pairs.
  CoraLikeConfig data_config;
  data_config.num_entities = 60;
  data_config.num_records = 400;
  data_config.seed = 2;
  GeneratedDataset generated = GenerateCoraLike(data_config);

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput adaptive = adalsh.Run(5);
  PairsBaseline pairs_method(generated.dataset, generated.rule);
  FilterOutput pairs = pairs_method.Run(5);

  SetAccuracy against_pairs =
      ComputeSetAccuracy(adaptive.clusters.UnionOfTopClusters(5),
                         pairs.clusters.UnionOfTopClusters(5));
  EXPECT_GT(against_pairs.f1, 0.95);
}

TEST(IntegrationTest, SpotSigsLikeAllMethodsAgree) {
  SpotSigsLikeConfig data_config;
  data_config.num_story_entities = 20;
  data_config.records_in_stories = 250;
  data_config.num_singletons = 150;
  data_config.seed = 3;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput adaptive = adalsh.Run(5);
  LshBlockingConfig blocking_config;
  blocking_config.num_hashes = 640;
  LshBlocking blocking(generated.dataset, generated.rule, blocking_config);
  FilterOutput blocked = blocking.Run(5);
  PairsBaseline pairs_method(generated.dataset, generated.rule);
  FilterOutput pairs = pairs_method.Run(5);

  EXPECT_GT(ComputeSetAccuracy(adaptive.clusters.UnionOfTopClusters(5),
                               pairs.clusters.UnionOfTopClusters(5))
                .f1,
            0.95);
  EXPECT_GT(ComputeSetAccuracy(blocked.clusters.UnionOfTopClusters(5),
                               pairs.clusters.UnionOfTopClusters(5))
                .f1,
            0.95);
  EXPECT_GT(GoldAccuracy(adaptive.clusters, truth, 5).f1, 0.7);
}

TEST(IntegrationTest, PopularImagesAdaptive) {
  PopularImagesConfig data_config;
  data_config.num_entities = 50;
  data_config.num_records = 700;
  data_config.angle_threshold_degrees = 3.0;
  data_config.seed = 4;
  GeneratedDataset generated = GeneratePopularImages(data_config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput output = adalsh.Run(5);
  SetAccuracy gold = GoldAccuracy(output.clusters, truth, 5);
  EXPECT_GT(gold.recall, 0.6) << "P=" << gold.precision;
  EXPECT_GT(gold.f1, 0.5);
}

TEST(IntegrationTest, BkImprovesRecallOnSpotSigs) {
  // Section 7.3: returning bk > k clusters raises Recall Gold.
  SpotSigsLikeConfig data_config;
  data_config.num_story_entities = 15;
  data_config.records_in_stories = 200;
  data_config.num_singletons = 100;
  data_config.seed = 6;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  std::vector<RecordId> gold_k = truth.TopKRecords(5);
  FilterOutput at_k = adalsh.Run(5);
  FilterOutput at_bk = adalsh.Run(10);
  double recall_k =
      ComputeSetAccuracy(at_k.clusters.UnionOfTopClusters(5), gold_k).recall;
  double recall_bk =
      ComputeSetAccuracy(at_bk.clusters.UnionOfTopClusters(10), gold_k).recall;
  EXPECT_GE(recall_bk, recall_k - 1e-12);
}

TEST(IntegrationTest, RecoveryReachesPerfectRankedAccuracy) {
  CoraLikeConfig data_config;
  data_config.num_entities = 40;
  data_config.num_records = 300;
  data_config.seed = 7;
  GeneratedDataset generated = GenerateCoraLike(data_config);
  GroundTruth truth = generated.dataset.BuildGroundTruth();

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput output = adalsh.Run(8);
  Clustering recovered =
      PerfectRecovery(output.clusters.UnionOfTopClusters(8), truth);
  RankedAccuracy ranked = ComputeRankedAccuracy(recovered, truth, 4);
  // With bk = 2k the top-k entities are all touched, so perfect recovery
  // reconstructs them exactly.
  EXPECT_GT(ranked.map, 0.95);
  EXPECT_GT(ranked.mar, 0.95);
}

TEST(IntegrationTest, AdaptiveDoesLessHashWorkThanBlocking) {
  // The mechanism behind the speedup: adaLSH computes far fewer hashes.
  SpotSigsLikeConfig data_config;
  data_config.num_story_entities = 15;
  data_config.records_in_stories = 150;
  data_config.num_singletons = 150;
  data_config.seed = 8;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);

  AdaptiveLsh adalsh(generated.dataset, generated.rule, FastAdaptiveConfig());
  FilterOutput adaptive = adalsh.Run(5);
  LshBlockingConfig blocking_config;
  blocking_config.num_hashes = 1280;
  LshBlocking blocking(generated.dataset, generated.rule, blocking_config);
  FilterOutput blocked = blocking.Run(5);
  EXPECT_LT(adaptive.stats.hashes_computed,
            blocked.stats.hashes_computed / 2);
}

}  // namespace
}  // namespace adalsh
