// Edge-case coverage for the full pipeline: degenerate datasets and extreme
// parameters every module must survive.

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "test_util.h"

namespace adalsh {
namespace {

AdaptiveLshConfig TinyConfig() {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 160;
  config.calibration_samples = 10;
  config.seed = 2;
  return config;
}

TEST(EdgeCasesTest, AllSingletonDataset) {
  std::vector<size_t> sizes(50, 1);
  GeneratedDataset generated = test::MakePlantedDataset(sizes, 3);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, TinyConfig());
  FilterOutput output = adalsh.Run(5);
  ASSERT_EQ(output.clusters.clusters.size(), 5u);
  for (const auto& cluster : output.clusters.clusters) {
    EXPECT_EQ(cluster.size(), 1u);
  }
}

TEST(EdgeCasesTest, SingleEntityDataset) {
  GeneratedDataset generated = test::MakePlantedDataset({30}, 5);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, TinyConfig());
  FilterOutput output = adalsh.Run(1);
  ASSERT_EQ(output.clusters.clusters.size(), 1u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 30u);
}

TEST(EdgeCasesTest, TwoRecordDataset) {
  GeneratedDataset generated = test::MakePlantedDataset({2}, 7);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, TinyConfig());
  FilterOutput output = adalsh.Run(1);
  EXPECT_EQ(output.clusters.TotalRecords(), 2u);
  PairsBaseline pairs(generated.dataset, generated.rule);
  EXPECT_EQ(pairs.Run(1).clusters.TotalRecords(), 2u);
}

TEST(EdgeCasesTest, IdenticalRecords) {
  // Many byte-identical records: one cluster, every method agrees.
  Dataset dataset("identical");
  for (int i = 0; i < 20; ++i) {
    std::vector<Field> fields;
    fields.push_back(Field::TokenSet({1, 2, 3, 4, 5}));
    dataset.AddRecord(Record(std::move(fields)), 0);
  }
  MatchRule rule = MatchRule::Leaf(0, 0.5);
  GeneratedDataset generated(std::move(dataset), rule);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, TinyConfig());
  FilterOutput output = adalsh.Run(1);
  ASSERT_EQ(output.clusters.clusters.size(), 1u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 20u);
}

TEST(EdgeCasesTest, EmptyTokenSets) {
  // Records with empty feature sets: they are all pairwise "identical"
  // (Jaccard distance 0) and must cluster together without crashing.
  Dataset dataset("empty");
  for (int i = 0; i < 5; ++i) {
    std::vector<Field> fields;
    fields.push_back(Field::TokenSet({}));
    dataset.AddRecord(Record(std::move(fields)), 0);
  }
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet({1, 2, 3}));
  dataset.AddRecord(Record(std::move(fields)), 1);
  MatchRule rule = MatchRule::Leaf(0, 0.5);
  GeneratedDataset generated(std::move(dataset), rule);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(1);
  ASSERT_EQ(output.clusters.clusters.size(), 1u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 5u);
}

TEST(EdgeCasesTest, ThresholdZeroAndOne) {
  GeneratedDataset generated = test::MakePlantedDataset({6, 4}, 9);
  // Distance threshold 0: only identical records match.
  MatchRule exact = MatchRule::Leaf(0, 0.0);
  PairsBaseline strict(generated.dataset, exact);
  FilterOutput strict_out = strict.Run(10);
  for (const auto& cluster : strict_out.clusters.clusters) {
    EXPECT_EQ(cluster.size(), 1u);
  }
  // Distance threshold 1: everything matches.
  MatchRule loose = MatchRule::Leaf(0, 1.0);
  PairsBaseline all(generated.dataset, loose);
  FilterOutput all_out = all.Run(1);
  EXPECT_EQ(all_out.clusters.clusters[0].size(), 10u);
}

TEST(EdgeCasesTest, TinyMaxBudgetSequence) {
  // A one-function sequence (L = 1): every H_1 outcome is final.
  GeneratedDataset generated = test::MakePlantedDataset({8, 4}, 11);
  AdaptiveLshConfig config = TinyConfig();
  config.sequence.max_budget = 20;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  EXPECT_EQ(adalsh.sequence().size(), 1u);
  FilterOutput output = adalsh.Run(2);
  EXPECT_GE(output.clusters.clusters.size(), 1u);
}

TEST(EdgeCasesTest, LshBlockingTinyBudget) {
  GeneratedDataset generated = test::MakePlantedDataset({8, 4, 1, 1}, 13);
  LshBlockingConfig config;
  config.num_hashes = 4;
  LshBlocking blocking(generated.dataset, generated.rule, config);
  FilterOutput output = blocking.Run(2);
  // With P verification even a terrible stage 1 resolves exactly.
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(2), truth.TopKRecords(2));
}

TEST(EdgeCasesTest, DenseZeroVectors) {
  // Zero vectors are maximally far from everything but each other.
  Dataset dataset("zeros");
  auto add_dense = [&](std::vector<float> v, EntityId e) {
    std::vector<Field> fields;
    fields.push_back(Field::DenseVector(std::move(v)));
    dataset.AddRecord(Record(std::move(fields)), e);
  };
  add_dense({0, 0, 0}, 0);
  add_dense({0, 0, 0}, 0);
  add_dense({1, 2, 3}, 1);
  add_dense({1, 2, 3.01f}, 1);
  MatchRule rule = MatchRule::Leaf(0, 0.05);
  GeneratedDataset generated(std::move(dataset), rule);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(2);
  ASSERT_EQ(output.clusters.clusters.size(), 2u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 2u);
  EXPECT_EQ(output.clusters.clusters[1].size(), 2u);
}

}  // namespace
}  // namespace adalsh
