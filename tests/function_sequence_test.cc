#include "core/function_sequence.h"

#include <gtest/gtest.h>

#include "datagen/cora_like.h"
#include "test_util.h"

namespace adalsh {
namespace {

TEST(FunctionSequenceTest, BuildsExponentialSequence) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 3}, 1);
  SequenceConfig config;
  config.max_budget = 640;
  StatusOr<FunctionSequence> sequence = FunctionSequence::Build(
      generated.rule, generated.dataset.record(0), config);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->size(), 6u);  // 20, 40, 80, 160, 320, 640
  for (size_t i = 0; i < sequence->size(); ++i) {
    EXPECT_EQ(sequence->budget(i), 20 << i);
  }
}

TEST(FunctionSequenceTest, IncreasingCostProperty) {
  // Property 3: budgets strictly increase along the sequence.
  GeneratedDataset generated = test::MakePlantedDataset({5}, 2);
  SequenceConfig config;
  config.max_budget = 1280;
  FunctionSequence sequence =
      FunctionSequence::Build(generated.rule, generated.dataset.record(0),
                              config)
          .value();
  for (size_t i = 1; i < sequence.size(); ++i) {
    EXPECT_GT(sequence.budget(i), sequence.budget(i - 1));
    EXPECT_GE(sequence.plan(i).total_hashes(),
              sequence.plan(i - 1).total_hashes());
  }
}

TEST(FunctionSequenceTest, MonotoneWAlongSequence) {
  // Appendix C.1: per-unit w never decreases between consecutive functions.
  GeneratedDataset generated = test::MakePlantedDataset({5}, 3);
  SequenceConfig config;
  config.max_budget = 2560;
  FunctionSequence sequence =
      FunctionSequence::Build(generated.rule, generated.dataset.record(0),
                              config)
          .value();
  for (size_t i = 1; i < sequence.size(); ++i) {
    const CompositeScheme& prev = sequence.scheme(i - 1);
    const CompositeScheme& cur = sequence.scheme(i);
    for (size_t g = 0; g < cur.groups.size(); ++g) {
      for (size_t u = 0; u < cur.groups[g].w.size(); ++u) {
        EXPECT_GE(cur.groups[g].w[u], prev.groups[g].w[u])
            << "function " << i << " group " << g << " unit " << u;
      }
    }
  }
}

TEST(FunctionSequenceTest, CoraRuleBuilds) {
  // The multi-field AND rule must compile into a 2-unit single group.
  CoraLikeConfig cora_config;
  cora_config.num_entities = 10;
  cora_config.num_records = 50;
  GeneratedDataset generated = GenerateCoraLike(cora_config);
  SequenceConfig config;
  config.max_budget = 320;
  StatusOr<FunctionSequence> sequence = FunctionSequence::Build(
      generated.rule, generated.dataset.record(0), config);
  ASSERT_TRUE(sequence.ok());
  EXPECT_EQ(sequence->structure().units.size(), 2u);
  EXPECT_EQ(sequence->structure().groups.size(), 1u);
}

TEST(FunctionSequenceTest, InvalidRuleRejected) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 4);
  SequenceConfig config;
  // Rule references a missing field.
  StatusOr<FunctionSequence> sequence = FunctionSequence::Build(
      MatchRule::Leaf(7, 0.5), generated.dataset.record(0), config);
  EXPECT_FALSE(sequence.ok());
}

TEST(FunctionSequenceTest, UnhashableRuleRejected) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 5);
  SequenceConfig config;
  MatchRule nested = MatchRule::And(
      {MatchRule::Leaf(0, 0.5),
       MatchRule::Or({MatchRule::Leaf(0, 0.4), MatchRule::Leaf(0, 0.3)})});
  StatusOr<FunctionSequence> sequence = FunctionSequence::Build(
      nested, generated.dataset.record(0), config);
  EXPECT_FALSE(sequence.ok());
  EXPECT_EQ(sequence.status().code(), StatusCode::kInvalidArgument);
}

TEST(FunctionSequenceTest, LinearStrategy) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 6);
  SequenceConfig config;
  config.strategy = BudgetStrategy::Linear(320);
  config.max_budget = 1280;
  FunctionSequence sequence =
      FunctionSequence::Build(generated.rule, generated.dataset.record(0),
                              config)
          .value();
  ASSERT_EQ(sequence.size(), 4u);
  EXPECT_EQ(sequence.budget(0), 320);
  EXPECT_EQ(sequence.budget(3), 1280);
}

TEST(FunctionSequenceTest, DebugStringListsFunctions) {
  GeneratedDataset generated = test::MakePlantedDataset({3}, 7);
  SequenceConfig config;
  config.max_budget = 80;
  FunctionSequence sequence =
      FunctionSequence::Build(generated.rule, generated.dataset.record(0),
                              config)
          .value();
  std::string debug = sequence.DebugString();
  EXPECT_NE(debug.find("H_1"), std::string::npos);
  EXPECT_NE(debug.find("H_3"), std::string::npos);
}

}  // namespace
}  // namespace adalsh
