#include "distance/jaccard.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(JaccardTest, IdenticalSets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(JaccardTest, DisjointSets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {3, 4}), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |{2,3}| / |{1,2,3,4}| = 0.5.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(JaccardTest, SubsetRelation) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(JaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
}

TEST(JaccardTest, Symmetric) {
  std::vector<uint64_t> a = {1, 5, 9, 13};
  std::vector<uint64_t> b = {1, 9, 21};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
}

TEST(JaccardAtLeastTest, MatchesExactComputation) {
  // Property check: the early-exit predicate agrees with the exact value on
  // random set pairs across thresholds.
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint64_t> a, b;
    size_t na = 1 + next() % 120, nb = 1 + next() % 120;
    for (size_t i = 0; i < na; ++i) a.push_back(next() % 200);
    for (size_t i = 0; i < nb; ++i) b.push_back(next() % 200);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    double sim = JaccardSimilarity(a, b);
    for (double threshold : {0.1, 0.3, 0.4, 0.5, 0.8}) {
      if (std::abs(sim - threshold) < 1e-9) continue;  // boundary ties
      EXPECT_EQ(JaccardSimilarityAtLeast(a, b, threshold), sim >= threshold)
          << "trial " << trial << " sim " << sim << " thr " << threshold;
    }
  }
}

TEST(JaccardAtLeastTest, EdgeCases) {
  EXPECT_TRUE(JaccardSimilarityAtLeast({1, 2}, {3, 4}, 0.0));
  EXPECT_FALSE(JaccardSimilarityAtLeast({1, 2}, {3, 4}, 0.1));
  EXPECT_TRUE(JaccardSimilarityAtLeast({}, {}, 1.0));
  EXPECT_FALSE(JaccardSimilarityAtLeast({}, {1}, 0.5));
  // Size-ratio prefilter: |A|=2, |B|=10 caps J at 0.2.
  EXPECT_FALSE(JaccardSimilarityAtLeast({1, 2},
                                        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
                                        0.3));
  EXPECT_TRUE(JaccardSimilarityAtLeast({1, 2},
                                       {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
                                       0.2));
}

TEST(JaccardAtLeastTest, ExactBoundary) {
  // The predicate is >= with a 1e-12 absolute slack (so integer-ratio
  // similarities land on the inclusive side regardless of rounding).
  // |{1,2}| / |{1,2,3,4}| = 0.5 is exact in binary floating point: exactly
  // at, one ulp below, and within-slack-above must all match; clearly above
  // the slack must not.
  std::vector<uint64_t> a = {1, 2};
  std::vector<uint64_t> b = {1, 2, 3, 4};
  EXPECT_TRUE(JaccardSimilarityAtLeast(a, b, 0.5));
  EXPECT_TRUE(JaccardSimilarityAtLeast(a, b, std::nextafter(0.5, 0.0)));
  EXPECT_TRUE(JaccardSimilarityAtLeast(a, b, std::nextafter(0.5, 1.0)));
  EXPECT_FALSE(JaccardSimilarityAtLeast(a, b, 0.5 + 1e-9));
  // Identical sets sit exactly at similarity 1; disjoint sets exactly at 0.
  EXPECT_TRUE(JaccardSimilarityAtLeast(a, a, 1.0));
  EXPECT_FALSE(JaccardSimilarityAtLeast(a, {7, 8}, 1e-9));
}

TEST(JaccardTest, Triangleish) {
  // Jaccard distance is a metric: check a triangle instance.
  std::vector<uint64_t> a = {1, 2, 3};
  std::vector<uint64_t> b = {2, 3, 4};
  std::vector<uint64_t> c = {3, 4, 5};
  EXPECT_LE(JaccardDistance(a, c),
            JaccardDistance(a, b) + JaccardDistance(b, c) + 1e-12);
}

}  // namespace
}  // namespace adalsh
