#include "distance/rule_parser.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(RuleParserTest, Leaf) {
  StatusOr<MatchRule> rule = ParseRule("leaf(0; 0.6)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->type(), MatchRule::Type::kLeaf);
  EXPECT_EQ(rule->fields()[0], 0u);
  EXPECT_DOUBLE_EQ(rule->threshold(), 0.6);
}

TEST(RuleParserTest, WhitespaceAndCaseInsensitive) {
  StatusOr<MatchRule> rule = ParseRule("  LEAF ( 2 ;  0.25 )  ");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->fields()[0], 2u);
  EXPECT_DOUBLE_EQ(rule->threshold(), 0.25);
}

TEST(RuleParserTest, WeightedAverage) {
  StatusOr<MatchRule> rule = ParseRule("wavg(0,1; 0.5,0.5; 0.3)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->type(), MatchRule::Type::kWeightedAverage);
  EXPECT_EQ(rule->fields(), (std::vector<FieldId>{0, 1}));
  EXPECT_EQ(rule->weights(), (std::vector<double>{0.5, 0.5}));
  EXPECT_DOUBLE_EQ(rule->threshold(), 0.3);
}

TEST(RuleParserTest, CoraRuleRoundTrip) {
  StatusOr<MatchRule> rule =
      ParseRule("and(wavg(0,1;0.5,0.5;0.3), leaf(2;0.8))");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->DebugString(),
            "And(WeightedAvg({0,1},{0.5,0.5})<=0.3, Leaf(2)<=0.8)");
}

TEST(RuleParserTest, NestedOrOfAnd) {
  StatusOr<MatchRule> rule = ParseRule(
      "or(leaf(0;0.1), and(leaf(1;0.2), leaf(2;0.3)))");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->type(), MatchRule::Type::kOr);
  ASSERT_EQ(rule->children().size(), 2u);
  EXPECT_EQ(rule->children()[1].type(), MatchRule::Type::kAnd);
}

TEST(RuleParserTest, ScientificNotationThreshold) {
  StatusOr<MatchRule> rule = ParseRule("leaf(0; 2.2e-2)");
  ASSERT_TRUE(rule.ok());
  EXPECT_NEAR(rule->threshold(), 0.022, 1e-12);
}

TEST(RuleParserTest, Errors) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("banana(0;0.5)").ok());
  EXPECT_FALSE(ParseRule("leaf(0)").ok());             // missing threshold
  EXPECT_FALSE(ParseRule("leaf(0; 0.5").ok());         // missing ')'
  EXPECT_FALSE(ParseRule("leaf(0;0.5) extra").ok());   // trailing input
  EXPECT_FALSE(ParseRule("and(leaf(0;0.5))").ok());    // single child
  EXPECT_FALSE(ParseRule("wavg(0,1; 0.5; 0.3)").ok()); // weight arity
  EXPECT_FALSE(ParseRule("leaf(-1; 0.5)").ok());       // negative field
  EXPECT_FALSE(ParseRule("leaf(1.5; 0.5)").ok());      // fractional field
}

TEST(RuleParserTest, ErrorsNamePosition) {
  StatusOr<MatchRule> rule = ParseRule("leaf(0)");
  ASSERT_FALSE(rule.ok());
  EXPECT_NE(rule.status().message().find("position"), std::string::npos);
}

}  // namespace
}  // namespace adalsh
