#include "datagen/vocabulary.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(VocabularyTest, WordsAreDistinct) {
  Vocabulary vocab(500, 1);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_TRUE(seen.insert(vocab.word(i)).second) << vocab.word(i);
  }
  EXPECT_EQ(vocab.size(), 500u);
}

TEST(VocabularyTest, DeterministicPerSeed) {
  Vocabulary a(100, 7), b(100, 7), c(100, 8);
  EXPECT_EQ(a.word(0), b.word(0));
  EXPECT_EQ(a.word(99), b.word(99));
  bool any_differ = false;
  for (size_t i = 0; i < 100; ++i) any_differ |= (a.word(i) != c.word(i));
  EXPECT_TRUE(any_differ);
}

TEST(VocabularyTest, WordsAreLowercaseAlpha) {
  Vocabulary vocab(50, 3);
  for (size_t i = 0; i < vocab.size(); ++i) {
    for (char c : vocab.word(i)) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << vocab.word(i);
    }
    EXPECT_GE(vocab.word(i).size(), 3u);
  }
}

TEST(VocabularyTest, SamplePhraseWordCount) {
  Vocabulary vocab(50, 5);
  Rng rng(1);
  std::string phrase = vocab.SamplePhrase(&rng, 4);
  int spaces = 0;
  for (char c : phrase) spaces += (c == ' ');
  EXPECT_EQ(spaces, 3);
}

TEST(ApplyTypoTest, ChangesAtMostOneChar) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::string original = "example";
    std::string mutated = original;
    ApplyTypo(&mutated, &rng);
    EXPECT_EQ(mutated.size(), original.size());
    int diffs = 0;
    for (size_t i = 0; i < original.size(); ++i) {
      diffs += (original[i] != mutated[i]);
    }
    EXPECT_LE(diffs, 1);
  }
}

TEST(ApplyTypoTest, EmptyStringIsNoOp) {
  Rng rng(9);
  std::string empty;
  ApplyTypo(&empty, &rng);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace adalsh
