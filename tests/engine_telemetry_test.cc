// Telemetry-plane contract tests (docs/observability.md): attaching the
// metrics registry / trace recorder to an engine never perturbs its results
// (the byte-identity contracts of engine_equivalence_test and
// shard_equivalence_test hold with telemetry enabled), mutation-lifecycle
// histograms carry exact counts — including under concurrent sharded
// writers, where `engine_batch_wall_seconds` must agree sample-for-sample
// with the `engine_batches` counter — the engine report's serialized key
// order is stable, and the slow-op watchdog's median verdicts behave.

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine_report.h"
#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "engine_harness.h"
#include "obs/metrics_registry.h"
#include "obs/slow_op_watchdog.h"
#include "obs/trace_recorder.h"
#include "test_util.h"

namespace adalsh {
namespace {

GeneratedDataset Workload(uint64_t seed) {
  return test::MakePlantedDataset({9, 7, 5, 3, 2, 1}, seed);
}

TEST(EngineTelemetryTest, TelemetryDoesNotPerturbResidentResults) {
  for (int threads : {1, 2, 8}) {
    GeneratedDataset generated = Workload(11);

    ResidentEngine plain(generated.rule, test::EngineOptions(threads, 4));
    test::RunRandomScript(&plain, generated.dataset, /*seed=*/11);
    const std::string expected = test::CanonicalSnapshot(*plain.Snapshot());

    MetricsRegistry registry;
    TraceRecorder trace;
    ResidentEngine::Options options = test::EngineOptions(threads, 4);
    options.config.instrumentation.metrics = &registry;
    options.config.instrumentation.trace = &trace;
    ResidentEngine instrumented(generated.rule, options);
    test::RunRandomScript(&instrumented, generated.dataset, /*seed=*/11);
    EXPECT_EQ(test::CanonicalSnapshot(*instrumented.Snapshot()), expected)
        << "threads " << threads;
    EXPECT_GT(registry.Snapshot().histograms.count("engine_batch_wall_seconds"),
              0u);
    EXPECT_GT(trace.num_spans(), 0u);
  }
}

TEST(EngineTelemetryTest, TelemetryDoesNotPerturbShardedResults) {
  for (int shards : {1, 4}) {
    GeneratedDataset generated = Workload(7);

    ShardedEngine::Options plain_options;
    plain_options.engine = test::EngineOptions(/*threads=*/2, 4);
    plain_options.shards = shards;
    ShardedEngine plain(generated.rule, plain_options);
    test::RunRandomScript(&plain, generated.dataset, /*seed=*/7);
    ASSERT_TRUE(plain.Flush().ok());
    const std::string expected = test::CanonicalSnapshot(*plain.Snapshot());

    MetricsRegistry registry;
    TraceRecorder trace;
    ShardedEngine::Options options;
    options.engine = test::EngineOptions(/*threads=*/2, 4);
    options.engine.config.instrumentation.metrics = &registry;
    options.engine.config.instrumentation.trace = &trace;
    options.shards = shards;
    ShardedEngine instrumented(generated.rule, options);
    test::RunRandomScript(&instrumented, generated.dataset, /*seed=*/7);
    ASSERT_TRUE(instrumented.Flush().ok());
    EXPECT_EQ(test::CanonicalSnapshot(*instrumented.Snapshot()), expected)
        << "shards " << shards;

    // The flush exposed the merge-phase breakdown: one sample per flush in
    // each phase histogram.
    MetricsSnapshot snapshot = registry.Snapshot();
    for (const char* name :
         {"shard_flush_seconds", "shard_merge_seconds",
          "shard_merge_gather_seconds", "shard_merge_graft_seconds",
          "shard_merge_refine_seconds"}) {
      ASSERT_EQ(snapshot.histograms.count(name), 1u) << name;
      EXPECT_EQ(snapshot.histograms.at(name).count(), 1u) << name;
    }
    // Per-shard balance gauges for every shard.
    for (int s = 0; s < shards; ++s) {
      const std::string prefix = "shard" + std::to_string(s);
      EXPECT_EQ(snapshot.gauges.count(prefix + "_live_records"), 1u);
      EXPECT_EQ(snapshot.gauges.count(prefix + "_level1_buckets"), 1u);
    }
  }
}

TEST(EngineTelemetryTest, ResidentHistogramCountsAreExact) {
  for (int threads : {1, 2, 8}) {
    GeneratedDataset generated = Workload(5);
    MetricsRegistry registry;
    ResidentEngine::Options options = test::EngineOptions(threads, 4);
    options.config.instrumentation.metrics = &registry;
    ResidentEngine engine(generated.rule, options);

    // A hand-counted script: 3 ingests, 1 remove, 1 update, 1 flush.
    std::vector<ExternalId> live;
    for (int batch = 0; batch < 3; ++batch) {
      std::vector<Record> records;
      for (size_t r = 0; r < 6; ++r) {
        records.push_back(generated.dataset.record(
            static_cast<size_t>(batch) * 6 + r));
      }
      auto ingested = engine.Ingest(std::move(records));
      ASSERT_TRUE(ingested.ok());
      live.insert(live.end(), ingested.value().assigned_ids.begin(),
                  ingested.value().assigned_ids.end());
    }
    ASSERT_TRUE(engine.Remove(std::vector<ExternalId>{live[0]}).ok());
    ASSERT_TRUE(engine.Update(live[1], generated.dataset.record(20)).ok());
    ASSERT_TRUE(engine.Flush().ok());

    MetricsSnapshot snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.histograms.at("engine_batch_wall_seconds").count(), 6u);
    EXPECT_EQ(snapshot.histograms.at("engine_batch_cpu_seconds").count(), 6u);
    EXPECT_EQ(snapshot.histograms.at("engine_lock_wait_seconds").count(), 6u);
    EXPECT_EQ(snapshot.histograms.at("engine_ingest_wall_seconds").count(),
              3u);
    EXPECT_EQ(snapshot.histograms.at("engine_remove_wall_seconds").count(),
              1u);
    EXPECT_EQ(snapshot.histograms.at("engine_update_wall_seconds").count(),
              1u);
    EXPECT_EQ(snapshot.histograms.at("engine_flush_wall_seconds").count(), 1u);
    EXPECT_EQ(snapshot.counters.at("engine_op_ingest"), 3u);
    EXPECT_EQ(snapshot.counters.at("engine_op_remove"), 1u);
    EXPECT_EQ(snapshot.counters.at("engine_op_update"), 1u);
    EXPECT_EQ(snapshot.counters.at("engine_op_flush"), 1u);
    auto counter = [&snapshot](const char* name) -> uint64_t {
      auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? 0 : it->second;
    };
    EXPECT_EQ(counter("engine_refinements_completed") +
                  counter("engine_refinements_interrupted"),
              6u);
  }
}

// Four concurrent writers against a sharded engine sharing one registry and
// one trace recorder (the TSan configuration the telemetry plane must stay
// clean under). Exactness invariant: every per-shard ApplyBatch bumps the
// `engine_batches` counter and records exactly one `engine_batch_wall_seconds`
// sample, so the two must agree whatever interleaving happened.
TEST(EngineTelemetryTest, ConcurrentShardedWritersKeepExactCounts) {
  GeneratedDataset generated = test::MakePlantedDataset(
      {8, 8, 8, 8, 6, 6, 6, 6}, /*seed=*/21);
  MetricsRegistry registry;
  TraceRecorder trace(/*max_spans=*/4096);
  ShardedEngine::Options options;
  options.engine = test::EngineOptions(/*threads=*/2, 6);
  options.engine.config.instrumentation.metrics = &registry;
  options.engine.config.instrumentation.trace = &trace;
  options.shards = 4;
  ShardedEngine engine(generated.rule, options);

  constexpr int kWriters = 4;
  const size_t total = generated.dataset.num_records();
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine, &generated, total, w] {
      // Writer w ingests its strided slice in batches of 4 and removes the
      // first id it was assigned — disjoint id ranges, no cross-writer
      // coordination needed.
      std::vector<ExternalId> mine;
      std::vector<Record> batch;
      for (size_t r = static_cast<size_t>(w); r < total; r += kWriters) {
        batch.push_back(generated.dataset.record(r));
        if (batch.size() == 4) {
          auto ingested = engine.Ingest(std::move(batch));
          ASSERT_TRUE(ingested.ok());
          mine.insert(mine.end(), ingested.value().assigned_ids.begin(),
                      ingested.value().assigned_ids.end());
          batch.clear();
        }
      }
      if (!batch.empty()) {
        auto ingested = engine.Ingest(std::move(batch));
        ASSERT_TRUE(ingested.ok());
        mine.insert(mine.end(), ingested.value().assigned_ids.begin(),
                    ingested.value().assigned_ids.end());
      }
      ASSERT_TRUE(engine.Remove(std::vector<ExternalId>{mine.front()}).ok());
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_TRUE(engine.Flush().ok());

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.histograms.at("engine_batch_wall_seconds").count(),
            snapshot.counters.at("engine_batches"));
  EXPECT_EQ(snapshot.histograms.at("engine_lock_wait_seconds").count(),
            snapshot.counters.at("engine_batches"));
  EXPECT_EQ(engine.counters().live_records,
            total - static_cast<size_t>(kWriters));
  EXPECT_GT(trace.num_spans() + trace.dropped_spans(), 0u);
}

// Golden key-order test for the engine report schema: consumers parse this
// document positionally in shell pipelines (tools/*.sh), so the serialized
// key sequence is a compatibility surface, not an implementation detail.
TEST(EngineTelemetryTest, EngineReportKeyOrderIsStable) {
  GeneratedDataset generated = Workload(3);
  MetricsRegistry registry;
  ShardedEngine::Options options;
  options.engine = test::EngineOptions(/*threads=*/1, 4);
  options.engine.config.instrumentation.metrics = &registry;
  options.shards = 2;
  ShardedEngine engine(generated.rule, options);
  test::RunRandomScript(&engine, generated.dataset, /*seed=*/3);
  ASSERT_TRUE(engine.Flush().ok());

  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string report = WriteEngineReportJson(engine, &snapshot);
  const std::vector<std::string> ordered_keys = {
      "{\"schema\":\"adalsh-engine-report-v1\"",
      "\"top_k\":",
      "\"shards\":2",
      "\"simd\":{\"dot\":",
      "\"minhash\":",
      "\"counters\":{\"batches\":",
      "\"ingested\":",
      "\"removed\":",
      "\"updated\":",
      "\"arrivals_merged\":",
      "\"refinements_completed\":",
      "\"refinements_interrupted\":",
      "\"generation\":",
      "\"live_records\":",
      "\"internal_records\":",
      "\"level1_buckets\":",
      "\"snapshot_lag_batches\":",
      "\"total_hashes\":",
      "\"total_similarities\":",
      "\"per_shard\":[{\"shard\":0,\"counters\":{\"batches\":",
      "{\"shard\":1,\"counters\":{\"batches\":",
      "\"snapshot\":{\"generation\":",
      "\"cluster_sizes\":[",
      "\"cluster_verification\":[",
      "\"refinement\":{",
      "\"metrics\":{\"counters\":{",
      "\"gauges\":{",
      "\"distributions\":{",
      "\"histograms\":{",
      "\"engine_batch_wall_seconds\":{\"count\":",
      "\"p50\":",
      "\"p90\":",
      "\"p99\":",
      "\"p99_9\":",
      "\"buckets\":[",
      "\"overflow\":",
  };
  size_t pos = 0;
  for (const std::string& key : ordered_keys) {
    const size_t at = report.find(key, pos);
    ASSERT_NE(at, std::string::npos)
        << "missing or out of order: " << key << "\nreport: " << report;
    pos = at + 1;
  }
}

TEST(SlowOpWatchdogTest, FlagsOutliersAgainstTheRunningMedian) {
  std::ostringstream log;
  SlowOpWatchdog::Options options;
  options.factor = 3.0;
  options.min_samples = 4;
  options.window = 8;
  SlowOpWatchdog watchdog(options, &log);

  // Warm-up: below min_samples no verdicts, even for a huge spike.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(watchdog.Observe("ingest", 0.010, /*span_id=*/i + 1));
  }
  EXPECT_FALSE(watchdog.Observe("ingest", 1.0, /*span_id=*/4));
  EXPECT_EQ(watchdog.slow_ops(), 0u);
  EXPECT_TRUE(log.str().empty());

  // History is now {10ms x3, 1s}: median ~10ms, so 25ms is not slow (2.5x)
  // but 50ms is (5x). The verdict line carries the op and the span id.
  EXPECT_FALSE(watchdog.Observe("ingest", 0.025, /*span_id=*/5));
  EXPECT_TRUE(watchdog.Observe("ingest", 0.050, /*span_id=*/6));
  EXPECT_EQ(watchdog.slow_ops(), 1u);
  EXPECT_NE(log.str().find("slow ingest"), std::string::npos);
  EXPECT_NE(log.str().find("span_id=6"), std::string::npos);

  // Ops have independent histories: a fresh op starts its own warm-up.
  EXPECT_FALSE(watchdog.Observe("flush", 0.050, /*span_id=*/7));
}

TEST(SlowOpWatchdogTest, FactorZeroDisablesEverything) {
  std::ostringstream log;
  SlowOpWatchdog watchdog(SlowOpWatchdog::Options{}, &log);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(watchdog.Observe("ingest", i == 49 ? 100.0 : 0.001, i));
  }
  EXPECT_EQ(watchdog.slow_ops(), 0u);
  EXPECT_TRUE(log.str().empty());
}

TEST(SlowOpWatchdogTest, SlowSamplesMoveTheMedian) {
  std::ostringstream log;
  SlowOpWatchdog::Options options;
  options.factor = 2.0;
  options.min_samples = 2;
  options.window = 4;
  SlowOpWatchdog watchdog(options, &log);
  watchdog.Observe("op", 0.010, 1);
  watchdog.Observe("op", 0.010, 2);
  // A durable regime change: the first slow observations page, but as they
  // fill the bounded window the median follows and the paging stops.
  EXPECT_TRUE(watchdog.Observe("op", 0.100, 3));
  watchdog.Observe("op", 0.100, 4);
  watchdog.Observe("op", 0.100, 5);
  watchdog.Observe("op", 0.100, 6);
  EXPECT_FALSE(watchdog.Observe("op", 0.100, 7));
}

}  // namespace
}  // namespace adalsh
