// Unit coverage for the durability plane's storage layer (docs/durability.md):
// CRC32C vectors, WAL frame encode/decode round trips, the torn-tail /
// bit-flip corruption corpus against ReadMutationLog, MutationLog append and
// sync under injected I/O faults (bounded retry accounting, permanent-failure
// reporting, short-write torn frames), and checkpoint write/load/prune
// atomicity through both kCheckpointWrite hits. The engine-level consequences
// of these behaviours (recovery confluence, read-only degradation) live in
// wal_recovery_test.cc.

#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/checkpoint.h"
#include "io/wal.h"
#include "record/record.h"
#include "util/fault_injection.h"

namespace adalsh {
namespace {

/// mkdtemp-backed scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/adalsh_wal_test_XXXXXX";
    char* made = ::mkdtemp(buf);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

Record MakeRecord(std::vector<uint64_t> tokens, std::string label) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields), std::move(label));
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(static_cast<bool>(out)) << path;
}

TEST(Crc32cTest, StandardCheckVectors) {
  // The Castagnoli check value (RFC 3720 appendix B / "CHECK" in Koopman's
  // tables): CRC32C over the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes — the iSCSI test vector.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(WalSyncPolicyTest, ParseAndNameRoundTrip) {
  for (WalSyncPolicy policy :
       {WalSyncPolicy::kNone, WalSyncPolicy::kBatch, WalSyncPolicy::kAlways}) {
    auto parsed = ParseWalSyncPolicy(WalSyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_EQ(ParseWalSyncPolicy("everysooften").status().code(),
            StatusCode::kInvalidArgument);
}

std::vector<WalFrame> CorpusFrames() {
  std::vector<WalFrame> frames;

  WalFrame ingest;
  ingest.type = WalFrameType::kIngest;
  ingest.seq = 7;
  ingest.generation = 3;
  ingest.parts = 2;
  ingest.ids = {10, 12};
  ingest.records.push_back(MakeRecord({1, 2, 3, 4}, "a"));
  ingest.records.push_back(MakeRecord({5, 6, 7}, ""));
  frames.push_back(ingest);

  WalFrame remove;
  remove.type = WalFrameType::kRemove;
  remove.seq = 8;
  remove.generation = 4;
  remove.parts = 3;
  remove.ids = {10, 44, 1000000007};
  frames.push_back(remove);

  WalFrame update;
  update.type = WalFrameType::kUpdate;
  update.seq = 9;
  update.generation = 4;
  update.ids = {12};
  update.records.push_back(MakeRecord({9, 9, 9}, "u"));
  frames.push_back(update);

  WalFrame flush;
  flush.type = WalFrameType::kFlush;
  flush.seq = 10;
  flush.generation = 5;
  flush.parts = 4;
  frames.push_back(flush);

  WalFrame cost;
  cost.type = WalFrameType::kCostModel;
  cost.seq = 11;
  cost.generation = 5;
  cost.parts = 2;
  cost.cost_per_hash = 1.25e-8;
  cost.cost_per_pair = 3.5e-6;
  frames.push_back(cost);

  return frames;
}

TEST(WalFrameTest, EncodeDecodeRoundTripsEveryType) {
  for (const WalFrame& original : CorpusFrames()) {
    const std::string bytes = EncodeWalFrame(original);
    WalFrame decoded;
    size_t consumed = 0;
    ASSERT_TRUE(DecodeWalFrame(bytes, 0, &decoded, &consumed).ok());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.seq, original.seq);
    EXPECT_EQ(decoded.generation, original.generation);
    if (original.type != WalFrameType::kUpdate) {
      EXPECT_EQ(decoded.parts, original.parts);
    }
    EXPECT_EQ(decoded.ids, original.ids);
    ASSERT_EQ(decoded.records.size(), original.records.size());
    EXPECT_EQ(decoded.cost_per_hash, original.cost_per_hash);
    EXPECT_EQ(decoded.cost_per_pair, original.cost_per_pair);
    // Re-encoding the decoded frame must reproduce the exact on-disk bytes —
    // records included — which is what recovery's committed-offset arithmetic
    // relies on (durability.cc recomputes frame sizes by re-encoding).
    EXPECT_EQ(EncodeWalFrame(decoded), bytes);
  }
}

TEST(WalFrameTest, DecodeAtOffsetInConcatenatedStream) {
  std::string stream;
  std::vector<size_t> starts;
  for (const WalFrame& frame : CorpusFrames()) {
    starts.push_back(stream.size());
    stream += EncodeWalFrame(frame);
  }
  const std::vector<WalFrame> corpus = CorpusFrames();
  for (size_t i = 0; i < corpus.size(); ++i) {
    WalFrame decoded;
    size_t consumed = 0;
    ASSERT_TRUE(DecodeWalFrame(stream, starts[i], &decoded, &consumed).ok());
    EXPECT_EQ(decoded.seq, corpus[i].seq);
  }
}

TEST(WalFrameTest, DecodeRejectsTruncationAndCorruption) {
  WalFrame frame;
  frame.type = WalFrameType::kRemove;
  frame.seq = 42;
  frame.ids = {1, 2, 3};
  const std::string bytes = EncodeWalFrame(frame);
  WalFrame out;
  size_t consumed = 0;

  // Every strict prefix is torn: incomplete header or incomplete payload.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DecodeWalFrame(bytes.substr(0, cut), 0, &out, &consumed).ok())
        << "prefix of " << cut << " bytes decoded";
  }

  // Any single bit flip in the payload fails the CRC; a flip in the stored
  // CRC itself also mismatches; a flip in the length field either mismatches
  // or runs past the buffer.
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string flipped = bytes;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x40);
    EXPECT_FALSE(DecodeWalFrame(flipped, 0, &out, &consumed).ok())
        << "bit flip at byte " << byte << " decoded";
  }

  // A length field past the sanity cap is corruption, not a huge frame.
  std::string huge = bytes;
  huge[3] = '\x7f';  // little-endian u32 length -> ~2 GiB
  EXPECT_FALSE(DecodeWalFrame(huge, 0, &out, &consumed).ok());
}

TEST(WalFrameTest, DecodeRejectsUnknownTypeAndTrailingBytes) {
  // Hand-build payloads with valid CRCs so only the semantic checks fire.
  auto with_header = [](std::string payload) {
    std::string bytes;
    uint32_t length = static_cast<uint32_t>(payload.size());
    uint32_t crc = Crc32c(payload.data(), payload.size());
    bytes.append(reinterpret_cast<const char*>(&length), 4);
    bytes.append(reinterpret_cast<const char*>(&crc), 4);
    bytes += payload;
    return bytes;
  };
  WalFrame out;
  size_t consumed = 0;

  std::string unknown_type(1, '\x09');
  unknown_type.append(16, '\0');  // seq + generation
  EXPECT_FALSE(
      DecodeWalFrame(with_header(unknown_type), 0, &out, &consumed).ok());

  WalFrame flush;
  flush.type = WalFrameType::kFlush;
  flush.seq = 1;
  std::string valid = EncodeWalFrame(flush);
  std::string trailing = valid.substr(8) + std::string(3, '\0');
  EXPECT_FALSE(DecodeWalFrame(with_header(trailing), 0, &out, &consumed).ok());
}

TEST(MutationLogTest, AppendReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("wal-0.log");
  auto log = MutationLog::Open(path, WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());
  uint64_t expected_bytes = 0;
  for (const WalFrame& frame : CorpusFrames()) {
    ASSERT_TRUE(log.value()->Append(frame).ok());
    expected_bytes += EncodeWalFrame(frame).size();
  }
  ASSERT_TRUE(log.value()->Sync().ok());
  EXPECT_EQ(log.value()->committed_bytes(), expected_bytes);
  EXPECT_EQ(log.value()->stats().frames_appended, CorpusFrames().size());
  EXPECT_EQ(log.value()->stats().bytes_appended, expected_bytes);
  EXPECT_EQ(log.value()->stats().syncs, 1u);
  EXPECT_EQ(log.value()->stats().append_retries, 0u);

  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().truncated);
  EXPECT_EQ(read.value().valid_bytes, expected_bytes);
  ASSERT_EQ(read.value().frames.size(), CorpusFrames().size());
  for (size_t i = 0; i < read.value().frames.size(); ++i) {
    EXPECT_EQ(read.value().frames[i].seq, CorpusFrames()[i].seq);
  }
}

TEST(MutationLogTest, MissingFileIsNotFound) {
  TempDir dir;
  EXPECT_EQ(ReadMutationLog(dir.file("absent.log")).status().code(),
            StatusCode::kNotFound);
}

TEST(MutationLogTest, AlwaysPolicySyncsEveryAppend) {
  TempDir dir;
  auto log = MutationLog::Open(dir.file("wal-0.log"), WalSyncPolicy::kAlways, 0);
  ASSERT_TRUE(log.ok());
  for (const WalFrame& frame : CorpusFrames()) {
    ASSERT_TRUE(log.value()->Append(frame).ok());
  }
  EXPECT_EQ(log.value()->stats().syncs, CorpusFrames().size());
}

// The post-crash corruption corpus: a valid prefix followed by every kind of
// damaged tail. The reader must return exactly the prefix, flag truncation,
// and report valid_bytes so Open can physically drop the tail.
TEST(MutationLogTest, TornTailIsTruncatedAtEveryCutPoint) {
  TempDir dir;
  const std::vector<WalFrame> corpus = CorpusFrames();
  std::string prefix;
  for (size_t i = 0; i + 1 < corpus.size(); ++i) {
    prefix += EncodeWalFrame(corpus[i]);
  }
  const std::string last = EncodeWalFrame(corpus.back());

  for (size_t cut = 1; cut < last.size(); ++cut) {
    const std::string path = dir.file("torn.log");
    WriteFileBytes(path, prefix + last.substr(0, cut));
    auto read = ReadMutationLog(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value().truncated) << "cut at " << cut;
    EXPECT_EQ(read.value().valid_bytes, prefix.size());
    EXPECT_EQ(read.value().frames.size(), corpus.size() - 1);
    EXPECT_FALSE(read.value().warning.empty());
  }
}

TEST(MutationLogTest, BitFlipEndsValidPrefixAtDamagedFrame) {
  TempDir dir;
  const std::vector<WalFrame> corpus = CorpusFrames();
  std::vector<std::string> encoded;
  std::string all;
  for (const WalFrame& frame : corpus) {
    encoded.push_back(EncodeWalFrame(frame));
    all += encoded.back();
  }

  // Flip one byte inside frame `victim`: everything before it survives,
  // the damaged frame and everything after are discarded.
  size_t frame_start = 0;
  for (size_t victim = 0; victim < corpus.size();
       frame_start += encoded[victim].size(), ++victim) {
    std::string damaged = all;
    damaged[frame_start + encoded[victim].size() / 2] ^= 0x01;
    const std::string path = dir.file("flipped.log");
    WriteFileBytes(path, damaged);
    auto read = ReadMutationLog(path);
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read.value().truncated) << "victim " << victim;
    EXPECT_EQ(read.value().frames.size(), victim);
    EXPECT_EQ(read.value().valid_bytes, frame_start);
  }
}

TEST(MutationLogTest, OpenTruncatesDiscardedTailAndAppendsCleanly) {
  TempDir dir;
  const std::vector<WalFrame> corpus = CorpusFrames();
  const std::string path = dir.file("wal-0.log");
  std::string prefix = EncodeWalFrame(corpus[0]);
  WriteFileBytes(path, prefix + EncodeWalFrame(corpus[1]).substr(0, 5));

  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().truncated);
  auto log =
      MutationLog::Open(path, WalSyncPolicy::kBatch, read.value().valid_bytes);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(ReadFileBytes(path).size(), prefix.size());  // tail is gone

  ASSERT_TRUE(log.value()->Append(corpus[2]).ok());
  auto reread = ReadMutationLog(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().truncated);
  ASSERT_EQ(reread.value().frames.size(), 2u);
  EXPECT_EQ(reread.value().frames[1].seq, corpus[2].seq);
}

TEST(MutationLogTest, TruncateEmptiesLogAndResetsOffset) {
  TempDir dir;
  const std::string path = dir.file("wal-0.log");
  auto log = MutationLog::Open(path, WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[0]).ok());
  ASSERT_TRUE(log.value()->Truncate().ok());
  EXPECT_EQ(log.value()->committed_bytes(), 0u);
  EXPECT_TRUE(ReadFileBytes(path).empty());

  // The log stays usable after truncation (checkpoints truncate in place).
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[1]).ok());
  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().frames.size(), 1u);
  EXPECT_EQ(read.value().frames[0].seq, CorpusFrames()[1].seq);
}

TEST(MutationLogFaultTest, TransientAppendFailureRetriesAndSucceeds) {
  TempDir dir;
  auto log = MutationLog::Open(dir.file("wal-0.log"), WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalAppend, 1,
                  Status::FailedPrecondition("injected EIO"), /*repeat=*/2);
  ScopedFaultInjector installed(&injector);

  ASSERT_TRUE(log.value()->Append(CorpusFrames()[0]).ok());
  EXPECT_EQ(log.value()->stats().append_retries, 2u);
  EXPECT_EQ(log.value()->stats().frames_appended, 1u);
  EXPECT_EQ(injector.hits(FaultSite::kWalAppend), 3u);
}

TEST(MutationLogFaultTest, PermanentAppendFailureLeavesLogUnchanged) {
  TempDir dir;
  const std::string path = dir.file("wal-0.log");
  auto log = MutationLog::Open(path, WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[0]).ok());
  const uint64_t committed = log.value()->committed_bytes();

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalAppend, 1,
                  Status::FailedPrecondition("injected dead disk"),
                  /*repeat=*/0);
  ScopedFaultInjector installed(&injector);

  EXPECT_FALSE(log.value()->Append(CorpusFrames()[1]).ok());
  EXPECT_EQ(log.value()->committed_bytes(), committed);
  EXPECT_EQ(log.value()->stats().frames_appended, 1u);
  // All attempts were consumed before giving up.
  EXPECT_EQ(log.value()->stats().append_retries, 3u);

  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().frames.size(), 1u);
  EXPECT_FALSE(read.value().truncated);
}

TEST(MutationLogFaultTest, ShortWritePersistsTornFrameBehindCommittedOffset) {
  TempDir dir;
  const std::string path = dir.file("wal-0.log");
  auto log = MutationLog::Open(path, WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[0]).ok());
  const uint64_t committed = log.value()->committed_bytes();

  // Attempt 1 is capped at 5 bytes (torn frame persisted), every retry gets
  // an injected failure before touching the file — so the append fails
  // outright with a torn tail on disk, the crash-mid-write shape.
  FaultInjector injector;
  injector.ShortWriteAt(FaultSite::kWalAppend, 1, 5);
  injector.FailAt(FaultSite::kWalAppend, 2,
                  Status::FailedPrecondition("injected dead disk"),
                  /*repeat=*/0);
  {
    ScopedFaultInjector installed(&injector);
    EXPECT_FALSE(log.value()->Append(CorpusFrames()[1]).ok());
  }
  EXPECT_EQ(log.value()->committed_bytes(), committed);
  EXPECT_GT(ReadFileBytes(path).size(), committed);  // torn bytes on disk

  // The reader sees exactly the acked prefix and flags the tail.
  auto read = ReadMutationLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().truncated);
  EXPECT_EQ(read.value().valid_bytes, committed);
  EXPECT_EQ(read.value().frames.size(), 1u);

  // A later successful append overwrites the torn bytes in place.
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[2]).ok());
  auto reread = ReadMutationLog(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().truncated);
  EXPECT_EQ(reread.value().frames.size(), 2u);
}

TEST(MutationLogFaultTest, TransientSyncFailureRetries) {
  TempDir dir;
  auto log = MutationLog::Open(dir.file("wal-0.log"), WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log.value()->Append(CorpusFrames()[0]).ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalSync, 1,
                  Status::FailedPrecondition("injected fsync EIO"),
                  /*repeat=*/1);
  ScopedFaultInjector installed(&injector);

  ASSERT_TRUE(log.value()->Sync().ok());
  EXPECT_EQ(log.value()->stats().sync_retries, 1u);
  EXPECT_EQ(log.value()->stats().syncs, 1u);
}

TEST(MutationLogFaultTest, PermanentSyncFailureReportsError) {
  TempDir dir;
  auto log = MutationLog::Open(dir.file("wal-0.log"), WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kWalSync, 1,
                  Status::FailedPrecondition("injected fsync dead"),
                  /*repeat=*/0);
  ScopedFaultInjector installed(&injector);

  EXPECT_FALSE(log.value()->Sync().ok());
  EXPECT_EQ(log.value()->stats().syncs, 0u);
  EXPECT_EQ(log.value()->stats().sync_retries, 3u);
}

TEST(ScopedFaultInjectorTest, NestedInstallShadowsAndRestores) {
  TempDir dir;
  auto log = MutationLog::Open(dir.file("wal-0.log"), WalSyncPolicy::kBatch, 0);
  ASSERT_TRUE(log.ok());

  FaultInjector outer;
  outer.FailAt(FaultSite::kWalSync, 1,
               Status::FailedPrecondition("outer fsync failure"),
               /*repeat=*/0);
  ScopedFaultInjector outer_installed(&outer);
  EXPECT_FALSE(log.value()->Sync().ok());

  {
    // The inner injector shadows the outer one: its sites are all clear, so
    // the sync succeeds while the outer failure plan is dark.
    FaultInjector inner;
    ScopedFaultInjector inner_installed(&inner);
    EXPECT_TRUE(log.value()->Sync().ok());
    EXPECT_GT(inner.hits(FaultSite::kWalSync), 0u);
  }

  // Scope exit restores the outer injector and its permanent failure.
  EXPECT_FALSE(log.value()->Sync().ok());
}

CheckpointData MakeCheckpoint(uint64_t last_seq, size_t records) {
  CheckpointData data;
  data.last_seq = last_seq;
  data.next_external_id = 100 + last_seq;
  data.generation = 9;
  data.shards = 4;
  data.has_cost_model = true;
  data.cost_per_hash = 1e-8;
  data.cost_per_pair = 1e-6;
  for (size_t i = 0; i < records; ++i) {
    data.ids.push_back(i * 3);
    data.records.push_back(
        MakeRecord({i + 1, i + 2, i + 3}, "r" + std::to_string(i)));
  }
  return data;
}

TEST(CheckpointTest, WriteLoadRoundTrip) {
  TempDir dir;
  auto path = WriteCheckpoint(dir.path(), MakeCheckpoint(17, 5));
  ASSERT_TRUE(path.ok());

  std::vector<std::string> warnings;
  auto loaded = LoadNewestCheckpoint(dir.path(), &warnings);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(warnings.empty());
  EXPECT_EQ(loaded.value().last_seq, 17u);
  EXPECT_EQ(loaded.value().next_external_id, 117u);
  EXPECT_EQ(loaded.value().generation, 9u);
  EXPECT_EQ(loaded.value().shards, 4u);
  EXPECT_TRUE(loaded.value().has_cost_model);
  EXPECT_EQ(loaded.value().cost_per_hash, 1e-8);
  ASSERT_EQ(loaded.value().ids.size(), 5u);
  EXPECT_EQ(loaded.value().ids[4], 12u);
  EXPECT_EQ(loaded.value().records[4].label(), "r4");
}

TEST(CheckpointTest, EmptyDirIsNotFound) {
  TempDir dir;
  EXPECT_EQ(LoadNewestCheckpoint(dir.path(), nullptr).status().code(),
            StatusCode::kNotFound);
}

TEST(CheckpointTest, NewestValidWinsAndDamagedFallsBack) {
  TempDir dir;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeCheckpoint(5, 2)).ok());
  auto newest = WriteCheckpoint(dir.path(), MakeCheckpoint(9, 3));
  ASSERT_TRUE(newest.ok());

  auto loaded = LoadNewestCheckpoint(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().last_seq, 9u);

  // Damage the newest file: the loader reports it and falls back to seq 5.
  std::string bytes = ReadFileBytes(newest.value());
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFileBytes(newest.value(), bytes);
  std::vector<std::string> warnings;
  auto fallback = LoadNewestCheckpoint(dir.path(), &warnings);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback.value().last_seq, 5u);
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("CRC mismatch"), std::string::npos);
}

TEST(CheckpointTest, PruneRemovesSupersededAndOrphanedTmp) {
  TempDir dir;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeCheckpoint(3, 1)).ok());
  ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeCheckpoint(6, 1)).ok());
  auto keep = WriteCheckpoint(dir.path(), MakeCheckpoint(9, 1));
  ASSERT_TRUE(keep.ok());
  WriteFileBytes(dir.file("checkpoint-00000000000000000004.tmp"), "stranded");

  EXPECT_EQ(PruneCheckpoints(dir.path(), 9), 3);
  auto loaded = LoadNewestCheckpoint(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().last_seq, 9u);
  EXPECT_FALSE(std::filesystem::exists(
      dir.file("checkpoint-00000000000000000003")));
  EXPECT_FALSE(std::filesystem::exists(
      dir.file("checkpoint-00000000000000000004.tmp")));
}

TEST(CheckpointFaultTest, FailureBeforeTempWriteLeavesNoTrace) {
  TempDir dir;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeCheckpoint(5, 2)).ok());

  FaultInjector injector;
  injector.FailAt(FaultSite::kCheckpointWrite, 1,
                  Status::FailedPrecondition("injected ENOSPC"));
  ScopedFaultInjector installed(&injector);
  EXPECT_FALSE(WriteCheckpoint(dir.path(), MakeCheckpoint(9, 2)).ok());

  // No new file, no .tmp; the previous checkpoint still loads.
  int entries = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator(dir.path())) {
    ++entries;
  }
  EXPECT_EQ(entries, 1);
  auto loaded = LoadNewestCheckpoint(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().last_seq, 5u);
}

TEST(CheckpointFaultTest, FailureBeforeRenameKeepsOldCheckpointVisible) {
  TempDir dir;
  ASSERT_TRUE(WriteCheckpoint(dir.path(), MakeCheckpoint(5, 2)).ok());

  // Hit 2 is the window between the durable temp file and the rename: the
  // new checkpoint must not become visible, the old one must survive.
  FaultInjector injector;
  injector.FailAt(FaultSite::kCheckpointWrite, 2,
                  Status::FailedPrecondition("injected crash window"));
  ScopedFaultInjector installed(&injector);
  EXPECT_FALSE(WriteCheckpoint(dir.path(), MakeCheckpoint(9, 2)).ok());

  auto loaded = LoadNewestCheckpoint(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().last_seq, 5u);
  EXPECT_FALSE(std::filesystem::exists(
      dir.file("checkpoint-00000000000000000009")));
}

}  // namespace
}  // namespace adalsh
