#!/usr/bin/env bash
# Kill-point matrix for the durability plane (docs/durability.md): runs a
# scripted durable serve session with --crash-at=SITE:N so the process dies
# (_Exit(42)) between two specific bytes reaching the disk, restarts on the
# same --data-dir, and byte-diffs the recovered query transcript against a
# reference session that executed exactly the mutations the kill point made
# durable — acknowledged-and-synced mutations must survive, and a torn tail
# must never corrupt the surviving prefix.
#
# Sites covered: wal_append (frame lost before the write), wal_sync (frame
# written, fsync never ran), checkpoint_write before the temp write and
# before the rename (old checkpoint must stay visible), recovery_replay (a
# crash during recovery must leave the log replayable), plus a non-crash
# torn-tail case cut with truncate(1) and a cross-shard kill that loses one
# sub-frame of a multi-shard ingest group.
#
# Wired into ctest as `crash_smoke` (mirrors tools/engine_smoke.sh).
#
# Usage: crash_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
rm -rf "$scratch"
mkdir -p "$scratch"

base=("$cli" serve --columns=text "--rule=leaf(0;0.5)" --k=3 --threads=1
      --seed=3 --cost-model=1e-8,1e-6 --sync=always)

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# serve_session <data dir> <stdout file> <stderr file> <shards> <crash spec
# or ''> <protocol lines...> — returns the CLI's exit status.
serve_session() {
  local dir=$1 out=$2 errf=$3 shards=$4 crash=$5
  shift 5
  local cmd=("${base[@]}" "--data-dir=$dir" "--shards=$shards")
  if [[ -n "$crash" ]]; then cmd+=("--crash-at=$crash"); fi
  local status=0
  printf '%s\n' "$@" | "${cmd[@]}" > "$out" 2> "$errf" || status=$?
  return "$status"
}

# The deterministic mutation stream. With --shards=0 and the cost model
# pinned on the command line, each mutation appends exactly one WAL frame:
#   frame 1  commit  (ingest ids 0,1)
#   frame 2  commit  (ingest id 2)
#   frame 3  update 0
#   frame 4  remove 1
#   frame 5  flush
mutations=(
  "add alpha beta gamma delta epsilon zeta eta theta"
  "add alpha beta gamma delta epsilon zeta eta iota"
  "commit"
  "add red orange yellow green blue indigo violet pink"
  "commit"
  "update 0 alpha beta kappa delta epsilon zeta eta theta"
  "remove 1"
  "flush"
)

# Read-only probe replayed after every restart; `flush` first so a sharded
# engine publishes its merged snapshot before topk.
query=("flush" "topk" "cluster 0" "quit")

# make_reference <name> <shards> <mutation lines...> — clean run of a
# mutation prefix, clean quit, then a reopen running the query probe. The
# probe transcript is what every crashed-and-recovered session must match.
make_reference() {
  local name=$1 shards=$2
  shift 2
  local dir="$scratch/ref_$name"
  mkdir -p "$dir"
  serve_session "$dir" "$scratch/ref_$name.mut" "$scratch/ref_$name.muterr" \
    "$shards" "" "$@" "quit" \
    || fail "reference $name mutation session exited non-zero"
  serve_session "$dir" "$scratch/ref_$name.query" "$scratch/ref_$name.qerr" \
    "$shards" "" "${query[@]}" \
    || fail "reference $name query session exited non-zero"
}

# crash_case <name> <shards> <crash spec> <reference name> <mutation
# lines...> — run the mutations under --crash-at, demand exit 42, restart on
# the same dir, and byte-diff the query transcript against the reference.
crash_case() {
  local name=$1 shards=$2 crash=$3 ref=$4
  shift 4
  local dir="$scratch/case_$name"
  mkdir -p "$dir"
  local status=0
  serve_session "$dir" "$scratch/case_$name.mut" "$scratch/case_$name.muterr" \
    "$shards" "$crash" "$@" "quit" || status=$?
  if [[ "$status" -ne 42 ]]; then
    fail "case $name: expected _Exit(42) at $crash, got exit $status"
  fi
  serve_session "$dir" "$scratch/case_$name.query" "$scratch/case_$name.qerr" \
    "$shards" "" "${query[@]}" \
    || fail "case $name: restart after crash exited non-zero"
  grep -q '^recovered ' "$scratch/case_$name.qerr" \
    || fail "case $name: restart printed no recovered line"
  if ! diff -u "$scratch/ref_$ref.query" "$scratch/case_$name.query"; then
    fail "case $name: recovered state deviates from reference $ref"
  fi
  echo "crash_smoke: $name OK (crash at $crash, matches $ref)"
}

# References: the full state and the two prefixes the resident kill points
# land on.
make_reference full 0 "${mutations[@]}"
make_reference prefix2 0 "${mutations[@]:0:5}"   # through the second commit
make_reference prefix4 0 "${mutations[@]:0:7}"   # through the remove

# --- Kill-point matrix, resident engine -------------------------------------

# The trigger fires before the pwrite: frame 3 (the update) is never
# written, frames 1-2 survive.
crash_case append3 0 wal_append:3 prefix2 "${mutations[@]}"

# The trigger fires before the fsync: frame 4 (the remove) is already in
# the file and a process kill does not empty the page cache, so frames 1-4
# survive.
crash_case sync4 0 wal_sync:4 prefix4 "${mutations[@]}"

# Checkpoint kill points: the crash lands inside the `checkpoint` command
# after every mutation frame is durable, so recovery replays the full log.
# Hit 1 is before the temp file is written (no trace may remain), hit 2 is
# after the temp fsync but before the rename (the half-baked temp must be
# ignored and pruned).
crash_case ckpt_temp 0 checkpoint_write:1 full "${mutations[@]}" "checkpoint"
crash_case ckpt_rename 0 checkpoint_write:2 full "${mutations[@]}" "checkpoint"
# The orphaned .tmp may survive until the next successful checkpoint prunes
# it, but no completed checkpoint may have become visible.
if find "$scratch/case_ckpt_rename" -name 'checkpoint-*' ! -name '*.tmp' \
    | grep -q .; then
  fail "ckpt_rename: a checkpoint became visible despite the pre-rename crash"
fi

# --- Crash during recovery itself -------------------------------------------

# First restart dies mid-replay (recovery applies to memory only, the log is
# untouched), second restart must recover the full state.
dir="$scratch/case_replay"
mkdir -p "$dir"
status=0
serve_session "$dir" "$scratch/case_replay.mut" "$scratch/case_replay.muterr" \
  0 "" "${mutations[@]}" "quit" || fail "replay case: mutation session failed"
serve_session "$dir" "$scratch/case_replay.crash" \
  "$scratch/case_replay.crasherr" 0 recovery_replay:2 "${query[@]}" \
  || status=$?
if [[ "$status" -ne 42 ]]; then
  fail "replay case: expected _Exit(42) during replay, got exit $status"
fi
serve_session "$dir" "$scratch/case_replay.query" "$scratch/case_replay.qerr" \
  0 "" "${query[@]}" || fail "replay case: second restart failed"
if ! diff -u "$scratch/ref_full.query" "$scratch/case_replay.query"; then
  fail "replay case: state after crash-during-recovery deviates"
fi
echo "crash_smoke: replay OK (crash at recovery_replay:2, matches full)"

# --- Torn tail cut with truncate(1) -----------------------------------------

# A clean full run, then the last 7 bytes of the log are sliced off — the
# flush frame (frame 5) is torn. Recovery must warn, truncate the tail, and
# serve the frames 1-4 state.
dir="$scratch/case_torn"
mkdir -p "$dir"
serve_session "$dir" "$scratch/case_torn.mut" "$scratch/case_torn.muterr" \
  0 "" "${mutations[@]}" "quit" || fail "torn case: mutation session failed"
[[ -s "$dir/wal-0.log" ]] || fail "torn case: wal-0.log missing or empty"
truncate -s -7 "$dir/wal-0.log"
serve_session "$dir" "$scratch/case_torn.query" "$scratch/case_torn.qerr" \
  0 "" "${query[@]}" || fail "torn case: restart after truncate failed"
grep -q 'invalid frame' "$scratch/case_torn.qerr" \
  || fail "torn case: restart printed no torn-tail warning"
if ! diff -u "$scratch/ref_prefix4.query" "$scratch/case_torn.query"; then
  fail "torn case: recovered state deviates from prefix4"
fi
echo "crash_smoke: torn OK (truncated tail, matches prefix4)"

# --- Cross-shard kill inside a multi-shard ingest group ---------------------

# With --shards=2, ids route by SplitMix64(id) % 2: id 0 lands on shard 1,
# ids 1 and 2 split across shards 1 and 0, so the second commit appends a
# two-part group (wal_append hits 2 and 3). Killing at hit 3 persists only
# one sub-frame; recovery must discard the incomplete group and serve the
# first-commit state.
sharded_mutations=(
  "add red orange yellow green blue indigo violet pink"
  "commit"
  "add alpha beta gamma delta epsilon zeta eta theta"
  "add alpha beta gamma delta epsilon zeta eta iota"
  "commit"
)
make_reference shard_prefix1 2 "${sharded_mutations[@]:0:2}"
crash_case shard_group 2 wal_append:3 shard_prefix1 "${sharded_mutations[@]}"
grep -q 'frames_discarded=1' "$scratch/case_shard_group.qerr" \
  || fail "shard_group: recovered line does not report the discarded group"

echo "crash_smoke OK: $scratch"
