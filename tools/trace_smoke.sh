#!/usr/bin/env bash
# Smoke test for the CLI's observability exports: runs adalsh_cli with
# --trace-out/--stats-json on a tiny synthetic dataset and validates that
#
#   * the trace is valid Chrome trace_event JSON with traceEvents, at least
#     one `round` span, and per-worker thread_name lanes;
#   * the run report is valid JSON with the adalsh-run-report-v1 schema,
#     per-round detail, and a metrics snapshot.
#
# Wired into ctest as `trace_smoke` (mirrors tools/bench_smoke.sh).
#
# Usage: trace_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
mkdir -p "$scratch"
csv="$scratch/trace_smoke_records.csv"
trace="$scratch/trace_smoke_trace.json"
report="$scratch/trace_smoke_report.json"
rm -f "$csv" "$trace" "$report"

# Tiny synthetic dataset: a handful of planted entities (rows sharing most
# words) plus singleton noise, enough for a few refinement rounds.
python3 - "$csv" <<'EOF'
import random, sys
random.seed(42)
vocab = [f"w{i}" for i in range(300)]
rows = []
for e in range(8):
    base = random.sample(vocab, 30)
    for r in range(random.randint(4, 12)):
        words = list(base)
        for _ in range(random.randint(0, 5)):
            words[random.randrange(len(words))] = random.choice(vocab)
        rows.append((f"e{e}", " ".join(words)))
for s in range(40):
    rows.append((f"s{s}", " ".join(random.sample(vocab, 30))))
random.shuffle(rows)
open(sys.argv[1], "w").writelines(f"{e},{t}\n" for e, t in rows)
EOF

"$cli" --input="$csv" --columns=entity,text --rule="leaf(0;0.5)" \
       --k=5 --threads=2 --trace-out="$trace" --stats-json="$report" \
       > /dev/null 2> "$scratch/trace_smoke_stderr.txt"

for f in "$trace" "$report"; do
  if [[ ! -s "$f" ]]; then
    echo "FAIL: $f missing or empty" >&2
    exit 1
  fi
  python3 -m json.tool "$f" > /dev/null || {
    echo "FAIL: $f is not valid JSON" >&2
    exit 1
  }
done

# Trace: Chrome trace_event envelope, at least one span per taxonomy level
# we always emit, and named lanes.
for key in traceEvents displayTimeUnit thread_name round hash_pass; do
  if ! grep -q "\"$key\"" "$trace"; then
    echo "FAIL: $trace lacks \"$key\"" >&2
    exit 1
  fi
done

# Report: schema, totals, per-round detail, metrics snapshot — and the
# per-round counters must sum exactly to the totals.
for key in adalsh-run-report-v1 totals rounds_detail hashes_computed \
           pairwise_similarities records_last_hashed_at counters; do
  if ! grep -q "\"$key\"" "$report"; then
    echo "FAIL: $report lacks \"$key\"" >&2
    exit 1
  fi
done

python3 - "$report" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
totals = report["totals"]
rounds = report["rounds_detail"]
assert len(rounds) == totals["rounds"], (len(rounds), totals["rounds"])
for field in ("hashes_computed", "pairwise_similarities"):
    per_round = sum(r[field] for r in rounds)
    assert per_round == totals[field], (field, per_round, totals[field])
treated = sum(report["records_last_hashed_at"]) + \
    totals["records_finished_by_pairwise"]
assert treated == report["num_records"], (treated, report["num_records"])
EOF

echo "trace_smoke OK: $trace $report"
