// adalsh_cli — run top-k entity-resolution filtering on a CSV file, or serve
// a long-lived resident engine over stdin/stdout.
//
// Usage:
//   adalsh_cli --input=records.csv --columns=entity,text,text,text
//              --rule="and(wavg(0,1;0.5,0.5;0.3), leaf(2;0.8))"
//              --k=10 [--method=adalsh|lsh|pairs] [--lsh_x=1280]
//              [--header] [--bk=10] [--recover] [--output=clusters.csv]
//              [--threads=N] [--simd=LEVEL] [--trace-out=trace.json]
//              [--stats-json=report.json]
//              [--deadline-ms=MS] [--max-pairwise=N] [--max-hashes=N]
//              [--cancel-after-ms=MS] [--cost-model=hash_cost,pair_cost]
//              [--shards=S]
//
// --threads sizes the worker pool for the hash hot path (default: hardware
// concurrency). Results are identical at any thread count; see
// docs/threading.md.
//
// --shards=S (method=adalsh only) runs the batch through the sharded
// executor (docs/sharding.md): records partition across S shard engines,
// each runs the adaptive round loop independently, and a canonical
// cross-shard merge certifies the global top-k. With --cost-model pinned the
// cluster CSV is byte-identical for every S at every thread count
// (tools/shard_parity_smoke.sh). --shards=0 (default) keeps the in-process
// batch filter.
//
// --simd pins the kernel dispatch level: auto (default), native, scalar,
// avx2, avx512, neon. Results are identical at every level (docs/simd.md) —
// the pin only changes speed, so it exists for benchmarking and parity
// checks (tools/simd_parity_smoke.sh). Equivalent to setting ADALSH_SIMD.
//
// A `simd-level` subcommand prints the detected, supported, and per-kernel
// active levels in a script-friendly key/value form and exits.
//
// --cost-model pins the jump-to-P unit costs for --method=adalsh instead of
// wall-clock calibration, making the run's round schedule — and therefore
// its output — reproducible across machines, thread counts, and SIMD
// levels (the same knob serve mode has always had).
//
// --trace-out writes a Chrome trace_event JSON of the run (open in
// chrome://tracing or https://ui.perfetto.dev): one span per round / hash
// pass / pairwise sweep plus per-worker ParallelFor lanes. --stats-json
// writes the machine-readable run report (schema "adalsh-run-report-v1",
// docs/observability.md) with per-round counters and a metrics snapshot.
// Either flag enables instrumentation; with neither, the run is
// uninstrumented (zero overhead).
//
// --deadline-ms / --max-pairwise / --max-hashes set anytime-execution limits
// (docs/robustness.md): when one fires, the run stops at the next
// cooperative check and returns the best-effort clusters found so far, with
// the termination reason printed and carried in the --stats-json report.
// --cancel-after-ms demonstrates cooperative cancellation: a helper thread
// calls RunController::Cancel() after the given wall-clock time.
//
// Columns (one token per CSV column):
//   label    record display label        entity   ground-truth key
//   text     word-shingle feature        textN    N-word shingles
//   spotsigs spot-signature feature      vector   ';'-separated floats
//   ignore   skipped
//
// The output CSV has one row per kept record: cluster_rank, record_index,
// label. When the input has an entity column, gold accuracy against its
// ground truth is printed.
//
// Serve mode (docs/engine.md):
//   adalsh_cli serve --columns=<spec> --rule=<rule DSL> [--k=10]
//              [--threads=N] [--seed=N] [--cost-model=hash_cost,pair_cost]
//              [--deadline-ms=MS] [--max-pairwise=N] [--max-hashes=N]
//              [--shards=S] [--trace-out=trace.json] [--trace-max-spans=N]
//              [--metrics-out=FILE] [--metrics-interval-ms=MS]
//              [--watchdog-factor=F] [--watchdog-min-samples=N]
//              [--data-dir=DIR] [--sync=none|batch|always]
//              [--checkpoint-every-n=N] [--crash-at=SITE:N]
//              [--max-line-bytes=N]
//
// --data-dir=DIR turns on the durability plane (docs/durability.md): every
// mutation is appended to a per-shard write-ahead log in DIR before it is
// applied, and on startup the engine recovers from the newest valid
// checkpoint plus the log tail (torn/corrupt tails are truncated with a
// stderr warning; recovery results print as one `recovered ...` stderr
// line). --sync picks the fsync policy (default batch: durable at flush/
// checkpoint/clean-exit barriers). --checkpoint-every-n=N folds the live
// set into an atomic checkpoint after every N mutations; the `checkpoint`
// serve command does it on demand. A permanent WAL failure degrades the
// session to read-only (mutations answer `err`, queries keep serving) and
// raises the wal_degraded gauge — it never crashes the process.
//
// --crash-at=SITE:N (crash testing; tools/crash_smoke.sh) kills the process
// with _Exit(42) at the Nth hit of the named fault site (wal_append,
// wal_sync, checkpoint_write, recovery_replay, ...), so the kill lands
// between two specific bytes reaching the disk.
//
// --max-line-bytes caps protocol input lines (default 1 MiB): an oversized
// or binary-garbage line answers `err ...` and the session continues —
// stdin hardening for the long-lived server (docs/robustness.md).
//
// --shards=S serves a ShardedEngine (docs/sharding.md): mutations route to
// their record's shard and serialize only on that shard's lock; the
// snapshot served by topk/cluster advances only at `flush`, which runs the
// canonical cross-shard merge (deferred global certification). --shards=0
// (default) keeps the single resident engine with its continuous
// certification — the default transcript is unchanged.
//
// Runs a ResidentEngine and speaks a newline-delimited protocol on
// stdin/stdout (one reply line — or cluster lines followed by an "ok" line —
// per command; failures answer "err <message>" and the session continues):
//   add <csv row>        stage a record (parsed under --columns)
//   commit               ingest the staged batch, refine, publish
//   remove <id> [...]    remove by external id (all-or-nothing)
//   update <id> <row>    replace a record's contents, id stays stable
//   topk [k]             certified clusters of the current snapshot
//   cluster <id>         the snapshot cluster containing <id>
//   stats                one-line engine report JSON (adalsh-engine-report-v1)
//   metrics              one-line metrics snapshot JSON (adalsh-metrics-v1)
//   flush                refinement pass without a mutation
//   checkpoint           write a durability checkpoint now (needs --data-dir)
//   quit                 exit
// --deadline-ms / --max-* act as the ambient per-mutation SLO; an
// interrupted refinement keeps the previous snapshot serving (reply carries
// reason=deadline/budget) until a flush certifies. --cost-model pins the
// jump-to-P unit costs so transcripts are reproducible (tools/engine_smoke.sh
// diffs this mode against a golden transcript).
//
// Serve-mode telemetry (docs/observability.md): the metrics registry is
// always live — every mutation records exact latency histograms and
// counters, readable via the `metrics` command or the `stats` report.
// --metrics-out=FILE appends one adalsh-metrics-v1 JSON line per export
// tick (every --metrics-interval-ms, plus a final tick at shutdown) and
// rewrites FILE.prom with a Prometheus text exposition each tick.
// --trace-out writes a Chrome trace at exit with one span per mutation plus
// the engine's internal round/merge-phase spans; --trace-max-spans caps the
// recorder's ring buffer (oldest spans overwritten, drops counted; 0 =
// unbounded). --watchdog-factor=F logs any mutation slower than F times its
// op's running median to stderr with the mutation's trace span id
// (--watchdog-min-samples warm-up, default 16; 0 disables the watchdog).
// Telemetry never feeds back into results: transcripts stay byte-identical
// with every flag combination.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include <sstream>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "distance/rule_parser.h"
#include "engine/durability.h"
#include "engine/engine_report.h"
#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "eval/metrics.h"
#include "eval/recovery.h"
#include "io/csv.h"
#include "io/dataset_loader.h"
#include "obs/json_writer.h"
#include "obs/metrics_registry.h"
#include "obs/prometheus.h"
#include "obs/run_report.h"
#include "obs/slow_op_watchdog.h"
#include "obs/trace_recorder.h"
#include "util/fault_injection.h"
#include "util/flags.h"
#include "util/run_controller.h"
#include "util/simd.h"
#include "util/simd_kernels.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace adalsh;  // NOLINT: tool brevity

int Fail(const std::string& message) {
  std::cerr << "adalsh_cli: " << message << "\n";
  return 1;
}

/// Applies a --simd=LEVEL pin if one was given. Returns non-ok on an unknown
/// or unsupported level name.
Status ApplySimdFlag(const std::string& name) {
  if (name.empty()) return Status::Ok();
  StatusOr<int> pin = ParseSimdPin(name);
  if (!pin.ok()) return pin.status();
  SetSimdPin(*pin);
  return Status::Ok();
}

/// `adalsh_cli simd-level` — prints the dispatch state as `key value` lines:
/// the widest level this machine supports (detected), every runnable level
/// (supported), and the level each kernel resolves to right now (dot,
/// minhash — reflecting ADALSH_SIMD or the probe). Scripts key off these,
/// e.g. tools/run_sanitized_tests.sh reruns kernel suites at `detected`.
int RunSimdLevel() {
  std::cout << "detected " << SimdLevelName(DetectSimdLevel()) << "\n";
  std::cout << "supported";
  for (SimdLevel level : SupportedSimdLevels()) {
    std::cout << " " << SimdLevelName(level);
  }
  std::cout << "\n";
  std::cout << "dot " << SimdLevelName(simd::ActiveDotLevel()) << "\n";
  std::cout << "minhash " << SimdLevelName(simd::ActiveMinHashLevel())
            << "\n";
  return 0;
}

// --- Serve mode ---

/// Parses one CSV row (with full quoting support) from the payload of an
/// add/update command.
StatusOr<std::vector<std::string>> SplitCsvPayload(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("missing csv row");
  std::istringstream in(text);
  CsvReader reader(&in);
  std::vector<std::string> row;
  StatusOr<bool> more = reader.ReadRow(&row);
  if (!more.ok()) return more.status();
  if (!*more) return Status::InvalidArgument("missing csv row");
  return row;
}

StatusOr<uint64_t> ParseExternalId(const std::string& token) {
  if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad record id '" + token + "'");
  }
  return static_cast<uint64_t>(std::strtoull(token.c_str(), nullptr, 10));
}

std::string VerificationName(int level) {
  return level == kLastFunctionPairwise ? "P" : std::to_string(level);
}

std::string MutationReply(const EngineMutationResult& result) {
  std::string reply = "ok gen=" + std::to_string(result.generation);
  if (!result.assigned_ids.empty()) {
    reply += " ids=" + std::to_string(result.assigned_ids.front()) + ".." +
             std::to_string(result.assigned_ids.back());
  }
  reply += " reason=";
  reply += TerminationReasonName(result.refinement);
  return reply;
}

void PrintClusters(const std::vector<std::vector<ExternalId>>& clusters,
                   const std::vector<int>& verification) {
  for (size_t i = 0; i < clusters.size(); ++i) {
    std::cout << "cluster rank=" << (i + 1)
              << " v=" << VerificationName(verification[i]) << " members=";
    for (size_t m = 0; m < clusters[i].size(); ++m) {
      std::cout << (m > 0 ? "," : "") << clusters[i][m];
    }
    std::cout << "\n";
  }
}

int RunServe(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string columns = flags.GetString("columns", "");
  std::string rule_text = flags.GetString("rule", "");
  int k = static_cast<int>(flags.GetInt("k", 10));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  std::vector<double> cost_model = flags.GetDoubleList("cost-model", {});
  double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  uint64_t max_pairwise =
      static_cast<uint64_t>(flags.GetInt("max-pairwise", 0));
  uint64_t max_hashes = static_cast<uint64_t>(flags.GetInt("max-hashes", 0));
  std::string simd = flags.GetString("simd", "");
  int shards = static_cast<int>(flags.GetInt("shards", 0));
  std::string trace_path = flags.GetString("trace-out", "");
  int64_t trace_max_spans = flags.GetInt("trace-max-spans", 100000);
  std::string metrics_out = flags.GetString("metrics-out", "");
  double metrics_interval_ms = flags.GetDouble("metrics-interval-ms", 0.0);
  double watchdog_factor = flags.GetDouble("watchdog-factor", 0.0);
  int64_t watchdog_min_samples = flags.GetInt("watchdog-min-samples", 16);
  std::string data_dir = flags.GetString("data-dir", "");
  std::string sync_name = flags.GetString("sync", "batch");
  int64_t checkpoint_every_n = flags.GetInt("checkpoint-every-n", 0);
  std::string crash_at = flags.GetString("crash-at", "");
  int64_t max_line_bytes = flags.GetInt("max-line-bytes", 1 << 20);
  flags.CheckNoUnusedFlags();

  Status simd_status = ApplySimdFlag(simd);
  if (!simd_status.ok()) return Fail(simd_status.ToString());
  if (columns.empty() || rule_text.empty()) {
    return Fail("serve requires --columns=<spec> and --rule=<rule DSL>");
  }
  if (k < 1) return Fail("--k must be >= 1");
  if (threads < 0) return Fail("--threads must be >= 1");
  if (shards < 0) return Fail("--shards must be >= 0");
  if (trace_max_spans < 0) return Fail("--trace-max-spans must be >= 0");
  if (metrics_interval_ms < 0.0) {
    return Fail("--metrics-interval-ms must be >= 0");
  }
  if (metrics_interval_ms > 0.0 && metrics_out.empty()) {
    return Fail("--metrics-interval-ms requires --metrics-out");
  }
  if (watchdog_factor < 0.0) return Fail("--watchdog-factor must be >= 0");
  if (watchdog_min_samples < 1) {
    return Fail("--watchdog-min-samples must be >= 1");
  }
  if (!cost_model.empty() && cost_model.size() != 2) {
    return Fail("--cost-model takes two comma-separated unit costs "
                "(cost-per-hash,cost-per-pair)");
  }
  if (checkpoint_every_n < 0) return Fail("--checkpoint-every-n must be >= 0");
  if (max_line_bytes < 1) return Fail("--max-line-bytes must be >= 1");
  if ((checkpoint_every_n > 0 || !crash_at.empty()) && data_dir.empty()) {
    return Fail("--checkpoint-every-n and --crash-at require --data-dir");
  }
  StatusOr<WalSyncPolicy> sync = ParseWalSyncPolicy(sync_name);
  if (!sync.ok()) return Fail(sync.status().ToString());

  // --crash-at=SITE:N — kill the process at an exact fault-site hit so
  // crash tests can land between any two bytes reaching the disk. The
  // injector outlives the engine (it is consulted from every WAL write).
  FaultInjector crash_injector;
  std::optional<ScopedFaultInjector> crash_scope;
  if (!crash_at.empty()) {
    const size_t colon = crash_at.rfind(':');
    StatusOr<FaultSite> site = ParseFaultSite(crash_at.substr(0, colon));
    if (colon == std::string::npos || !site.ok()) {
      return Fail("--crash-at wants SITE:N (e.g. wal_append:3): " +
                  (site.ok() ? "missing :N" : site.status().ToString()));
    }
    char* end = nullptr;
    const std::string nth_text = crash_at.substr(colon + 1);
    const uint64_t nth = std::strtoull(nth_text.c_str(), &end, 10);
    if (nth < 1 || end == nth_text.c_str() || *end != '\0') {
      return Fail("--crash-at hit count must be a positive integer");
    }
    crash_injector.TriggerAt(*site, nth, [] { std::_Exit(42); });
    crash_scope.emplace(&crash_injector);
  }

  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs(columns);
  if (!specs.ok()) return Fail(specs.status().ToString());
  StatusOr<MatchRule> rule = ParseRule(rule_text);
  if (!rule.ok()) return Fail(rule.status().ToString());

  ResidentEngine::Options options;
  options.top_k = k;
  options.config.seed = seed;
  options.config.threads = threads;
  options.config.budget.deadline_ms = deadline_ms;
  options.config.budget.max_pairwise = max_pairwise;
  options.config.budget.max_hashes = max_hashes;
  Status budget_valid = options.config.budget.Validate();
  if (!budget_valid.ok()) return Fail(budget_valid.ToString());
  if (!cost_model.empty()) {
    options.cost_model = CostModel(cost_model[0], cost_model[1]);
  }

  // --- Telemetry plane (docs/observability.md). The registry is always
  // live in serve mode — the `metrics`/`stats` commands read it and the
  // per-thread shards cost nothing on the mutation path — and it never
  // feeds back into results, so transcripts stay byte-identical. Declared
  // before the engines so the sinks outlive them.
  Timer serve_timer;
  MetricsRegistry metrics;
  std::unique_ptr<TraceRecorder> trace;
  std::optional<ScopedParallelForTrace> parallel_trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<TraceRecorder>(
        static_cast<size_t>(trace_max_spans));
    parallel_trace.emplace(trace.get());  // per-worker ParallelFor lanes
  }
  options.config.instrumentation.metrics = &metrics;
  options.config.instrumentation.trace = trace.get();
  SlowOpWatchdog::Options watchdog_options;
  watchdog_options.factor = watchdog_factor;
  watchdog_options.min_samples = static_cast<size_t>(watchdog_min_samples);
  SlowOpWatchdog watchdog(watchdog_options, &std::cerr);

  // One of the three engine shapes, behind a uniform mutation/query
  // surface; none is movable (mutex members), so construct in place. With
  // --data-dir the durable wrapper owns whichever inner shape --shards
  // picked and recovers it from disk before serving (docs/durability.md).
  std::optional<ResidentEngine> resident;
  std::optional<ShardedEngine> sharded;
  std::unique_ptr<DurableEngine> durable;
  if (!data_dir.empty()) {
    DurableEngine::Options durable_options;
    durable_options.engine = std::move(options);
    durable_options.shards = shards;
    durable_options.data_dir = data_dir;
    durable_options.sync = *sync;
    durable_options.checkpoint_every_n =
        static_cast<uint64_t>(checkpoint_every_n);
    StatusOr<std::unique_ptr<DurableEngine>> opened =
        DurableEngine::Open(*rule, std::move(durable_options));
    if (!opened.ok()) return Fail(opened.status().ToString());
    durable = std::move(opened).value();
    const DurabilityStats recovered = durable->durability_stats();
    for (const std::string& warning : recovered.recovery_warnings) {
      std::cerr << "wal: " << warning << "\n";
    }
    std::cerr << "recovered checkpoint_seq=" << recovered.checkpoint_seq
              << " frames_replayed=" << recovered.frames_replayed
              << " frames_discarded=" << recovered.frames_discarded
              << " live=" << durable->counters().live_records << "\n";
  } else if (shards > 0) {
    ShardedEngine::Options sharded_options;
    sharded_options.engine = std::move(options);
    sharded_options.shards = shards;
    sharded.emplace(*rule, std::move(sharded_options));
  } else {
    resident.emplace(*rule, std::move(options));
  }
  auto ingest = [&](std::vector<Record> records) {
    return durable  ? durable->Ingest(std::move(records))
           : sharded ? sharded->Ingest(std::move(records))
                     : resident->Ingest(std::move(records));
  };
  auto remove = [&](const std::vector<ExternalId>& ids) {
    return durable  ? durable->Remove(ids)
           : sharded ? sharded->Remove(ids)
                     : resident->Remove(ids);
  };
  auto update = [&](ExternalId id, Record record) {
    return durable  ? durable->Update(id, std::move(record))
           : sharded ? sharded->Update(id, std::move(record))
                     : resident->Update(id, std::move(record));
  };
  auto flush = [&]() {
    return durable  ? durable->Flush()
           : sharded ? sharded->Flush()
                     : resident->Flush();
  };
  auto snapshot = [&]() {
    return durable  ? durable->Snapshot()
           : sharded ? sharded->Snapshot()
                     : resident->Snapshot();
  };
  auto stats_json = [&]() {
    const MetricsSnapshot snapshot = metrics.Snapshot();
    return durable  ? WriteEngineReportJson(*durable, &snapshot)
           : sharded ? WriteEngineReportJson(*sharded, &snapshot)
                     : WriteEngineReportJson(*resident, &snapshot);
  };

  // One adalsh-metrics-v1 line per emission, shared by the `metrics`
  // command and the periodic exporter; the seq is unique across both.
  std::atomic<uint64_t> metrics_seq{0};
  auto metrics_line = [&](const MetricsSnapshot& snapshot) {
    JsonWriter json;
    json.BeginObject()
        .Key("schema")
        .String("adalsh-metrics-v1")
        .Key("seq")
        .Uint(++metrics_seq)
        .Key("uptime_seconds")
        .Double(serve_timer.ElapsedSeconds())
        .Key("metrics");
    AppendMetricsSnapshot(snapshot, &json);
    return json.EndObject().TakeString();
  };

  // Periodic exporter: appends one JSON line per tick to --metrics-out and
  // rewrites <file>.prom with the Prometheus text exposition. The final
  // tick at shutdown runs on the main thread after the join, so the mutex
  // only guards tick-vs-tick (a `metrics` command never touches the file).
  std::ofstream metrics_file;
  if (!metrics_out.empty()) {
    metrics_file.open(metrics_out);
    if (!metrics_file) return Fail("cannot write " + metrics_out);
  }
  std::mutex export_mu;
  auto export_tick = [&]() {
    const MetricsSnapshot snapshot = metrics.Snapshot();
    std::lock_guard<std::mutex> lock(export_mu);
    metrics_file << metrics_line(snapshot) << std::flush;
    std::ofstream prom(metrics_out + ".prom");
    if (prom) prom << WritePrometheusText(snapshot);
  };
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stopping = false;
  std::thread exporter;
  if (!metrics_out.empty() && metrics_interval_ms > 0.0) {
    exporter = std::thread([&] {
      std::unique_lock<std::mutex> lock(stop_mu);
      const auto interval =
          std::chrono::duration<double, std::milli>(metrics_interval_ms);
      while (!stop_cv.wait_for(lock, interval, [&] { return stopping; })) {
        export_tick();
      }
    });
  }

  // Exactly one observation per protocol mutation that reached the engine —
  // in sharded mode a mutation fans out to per-shard sub-batches, so the
  // engine-level histograms see more entries; this serve-level family is
  // the one whose count equals the mutations issued.
  auto observe_mutation = [&](const char* op, double seconds,
                              uint64_t span_id) {
    metrics.AddCounter("serve_mutations", 1);
    metrics.AddCounter(std::string("serve_op_") + op, 1);
    metrics.RecordLatency("serve_mutation_seconds", seconds);
    metrics.RecordLatency(std::string("serve_") + op + "_seconds", seconds);
    if (watchdog.Observe(op, seconds, span_id)) {
      metrics.AddCounter("serve_slow_ops", 1);
    }
  };

  std::vector<Record> staged;
  std::string line;
  auto reply_status = [](const Status& status) {
    std::cout << "err " << status.message() << "\n" << std::flush;
  };
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Input hardening (docs/robustness.md): the server outlives its
    // clients, so a runaway or binary-garbage line must answer `err` and
    // leave the session serving, never abort or corrupt the protocol state.
    if (line.size() > static_cast<size_t>(max_line_bytes)) {
      reply_status(Status::InvalidArgument(
          "line exceeds --max-line-bytes=" + std::to_string(max_line_bytes)));
      continue;
    }
    bool has_control_bytes = false;
    for (char c : line) {
      has_control_bytes |=
          static_cast<unsigned char>(c) < 0x20 && c != '\t';
    }
    if (has_control_bytes) {
      reply_status(Status::InvalidArgument(
          "malformed line: control bytes in input"));
      continue;
    }
    const size_t space = line.find(' ');
    const std::string cmd = line.substr(0, space);
    const std::string payload =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (cmd.empty()) continue;

    if (cmd == "add") {
      StatusOr<std::vector<std::string>> row = SplitCsvPayload(payload);
      if (!row.ok()) {
        reply_status(row.status());
        continue;
      }
      StatusOr<ParsedCsvRecord> parsed = ParseCsvRecord(*row, *specs, 0);
      if (!parsed.ok()) {
        reply_status(parsed.status());
        continue;
      }
      staged.push_back(std::move(parsed->record));
      std::cout << "staged " << staged.size() << "\n" << std::flush;
    } else if (cmd == "commit") {
      Timer op_timer;
      TraceRecorder::Span op_span(trace.get(), "serve_commit", "serve");
      auto result = ingest(std::move(staged));
      staged.clear();  // all-or-nothing either way: a rejected batch is dropped
      observe_mutation("commit", op_timer.ElapsedSeconds(), op_span.id());
      if (!result.ok()) {
        reply_status(result.status());
        continue;
      }
      std::cout << MutationReply(result.value()) << "\n" << std::flush;
    } else if (cmd == "remove") {
      std::istringstream tokens(payload);
      std::vector<ExternalId> ids;
      std::string token;
      Status parse = Status::Ok();
      while (tokens >> token) {
        StatusOr<uint64_t> id = ParseExternalId(token);
        if (!id.ok()) {
          parse = id.status();
          break;
        }
        ids.push_back(*id);
      }
      if (!parse.ok()) {
        reply_status(parse);
        continue;
      }
      if (ids.empty()) {
        reply_status(Status::InvalidArgument("remove needs at least one id"));
        continue;
      }
      Timer op_timer;
      TraceRecorder::Span op_span(trace.get(), "serve_remove", "serve");
      auto result = remove(ids);
      observe_mutation("remove", op_timer.ElapsedSeconds(), op_span.id());
      if (!result.ok()) {
        reply_status(result.status());
        continue;
      }
      std::cout << MutationReply(result.value()) << "\n" << std::flush;
    } else if (cmd == "update") {
      const size_t id_end = payload.find(' ');
      StatusOr<uint64_t> id = ParseExternalId(payload.substr(0, id_end));
      if (!id.ok()) {
        reply_status(id.status());
        continue;
      }
      StatusOr<std::vector<std::string>> row = SplitCsvPayload(
          id_end == std::string::npos ? "" : payload.substr(id_end + 1));
      if (!row.ok()) {
        reply_status(row.status());
        continue;
      }
      StatusOr<ParsedCsvRecord> parsed = ParseCsvRecord(*row, *specs, 0);
      if (!parsed.ok()) {
        reply_status(parsed.status());
        continue;
      }
      Timer op_timer;
      TraceRecorder::Span op_span(trace.get(), "serve_update", "serve");
      auto result = update(*id, std::move(parsed->record));
      observe_mutation("update", op_timer.ElapsedSeconds(), op_span.id());
      if (!result.ok()) {
        reply_status(result.status());
        continue;
      }
      std::cout << MutationReply(result.value()) << "\n" << std::flush;
    } else if (cmd == "topk") {
      int query_k = k;
      if (!payload.empty()) {
        StatusOr<uint64_t> parsed_k = ParseExternalId(payload);
        if (!parsed_k.ok() || *parsed_k < 1) {
          reply_status(Status::InvalidArgument("bad k '" + payload + "'"));
          continue;
        }
        query_k = static_cast<int>(*parsed_k);
      }
      std::shared_ptr<const EngineSnapshot> snap = snapshot();
      const size_t count = std::min<size_t>(
          static_cast<size_t>(query_k), snap->clusters.size());
      PrintClusters({snap->clusters.begin(), snap->clusters.begin() + count},
                    {snap->verification.begin(),
                     snap->verification.begin() + count});
      std::cout << "ok gen=" << snap->generation << " clusters=" << count
                << " live=" << snap->live_records << "\n"
                << std::flush;
    } else if (cmd == "cluster") {
      StatusOr<uint64_t> id = ParseExternalId(payload);
      if (!id.ok()) {
        reply_status(id.status());
        continue;
      }
      std::shared_ptr<const EngineSnapshot> snap = snapshot();
      auto it = snap->cluster_of.find(*id);
      if (it == snap->cluster_of.end()) {
        reply_status(Status::NotFound(
            "record " + payload + " is in no cluster of generation " +
            std::to_string(snap->generation)));
        continue;
      }
      PrintClusters({snap->clusters[it->second]},
                    {snap->verification[it->second]});
      std::cout << "ok gen=" << snap->generation << "\n" << std::flush;
    } else if (cmd == "stats") {
      std::cout << stats_json() << "\n" << std::flush;
    } else if (cmd == "metrics") {
      std::cout << metrics_line(metrics.Snapshot()) << std::flush;
    } else if (cmd == "flush") {
      Timer op_timer;
      TraceRecorder::Span op_span(trace.get(), "serve_flush", "serve");
      auto result = flush();
      observe_mutation("flush", op_timer.ElapsedSeconds(), op_span.id());
      if (!result.ok()) {
        reply_status(result.status());
        continue;
      }
      std::cout << MutationReply(result.value()) << "\n" << std::flush;
    } else if (cmd == "checkpoint") {
      if (!durable) {
        reply_status(Status::FailedPrecondition(
            "checkpoint needs a durable engine (--data-dir)"));
        continue;
      }
      Timer op_timer;
      TraceRecorder::Span op_span(trace.get(), "serve_checkpoint", "serve");
      Status written = durable->Checkpoint();
      observe_mutation("checkpoint", op_timer.ElapsedSeconds(), op_span.id());
      if (!written.ok()) {
        reply_status(written);
        continue;
      }
      const DurabilityStats stats = durable->durability_stats();
      std::cout << "ok checkpoints=" << stats.checkpoints_written
                << " live=" << durable->counters().live_records << "\n"
                << std::flush;
    } else if (cmd == "quit") {
      std::cout << "bye\n" << std::flush;
      break;
    } else {
      reply_status(Status::InvalidArgument("unknown command '" + cmd + "'"));
    }
  }

  // --- Telemetry shutdown (both `quit` and stdin EOF land here): stop the
  // exporter, emit one final tick so short sessions still leave a complete
  // snapshot on disk, and dump the trace ring.
  if (exporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stop_mu);
      stopping = true;
    }
    stop_cv.notify_all();
    exporter.join();
  }
  if (!metrics_out.empty()) export_tick();
  parallel_trace.reset();  // stop recording before exporting
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) return Fail("cannot write " + trace_path);
    trace_file << trace->ToChromeTraceJson();
    std::cerr << "trace: " << trace->num_spans() << " spans ("
              << trace->dropped_spans() << " dropped) -> " << trace_path
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    return RunServe(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::string(argv[1]) == "simd-level") {
    return RunSimdLevel();
  }
  Flags flags(argc, argv);
  std::string input = flags.GetString("input", "");
  std::string columns = flags.GetString("columns", "");
  std::string rule_text = flags.GetString("rule", "");
  int k = static_cast<int>(flags.GetInt("k", 10));
  int bk = static_cast<int>(flags.GetInt("bk", k));
  std::string method = flags.GetString("method", "adalsh");
  int lsh_x = static_cast<int>(flags.GetInt("lsh_x", 1280));
  bool header = flags.GetBool("header", false);
  bool recover = flags.GetBool("recover", false);
  std::string output_path = flags.GetString("output", "");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int threads = static_cast<int>(flags.GetInt("threads", 0));
  std::string trace_path = flags.GetString("trace-out", "");
  std::string stats_json_path = flags.GetString("stats-json", "");
  double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  uint64_t max_pairwise =
      static_cast<uint64_t>(flags.GetInt("max-pairwise", 0));
  uint64_t max_hashes = static_cast<uint64_t>(flags.GetInt("max-hashes", 0));
  double cancel_after_ms = flags.GetDouble("cancel-after-ms", 0.0);
  std::string simd = flags.GetString("simd", "");
  std::vector<double> cost_model = flags.GetDoubleList("cost-model", {});
  int shards = static_cast<int>(flags.GetInt("shards", 0));
  flags.CheckNoUnusedFlags();

  Status simd_status = ApplySimdFlag(simd);
  if (!simd_status.ok()) return Fail(simd_status.ToString());
  if (!cost_model.empty() && cost_model.size() != 2) {
    return Fail("--cost-model takes two comma-separated unit costs "
                "(cost-per-hash,cost-per-pair)");
  }
  if (k < 1) return Fail("--k must be >= 1");
  if (bk < k) return Fail("--bk must be >= --k");
  if (threads < 0) return Fail("--threads must be >= 1");
  if (threads > 0) SetGlobalThreadCount(threads);
  if (shards < 0) return Fail("--shards must be >= 0");
  if (shards > 0 && method != "adalsh") {
    return Fail("--shards requires --method=adalsh");
  }

  RunBudget budget;
  budget.deadline_ms = deadline_ms;
  budget.max_pairwise = max_pairwise;
  budget.max_hashes = max_hashes;
  Status budget_valid = budget.Validate();
  if (!budget_valid.ok()) return Fail(budget_valid.ToString());
  if (cancel_after_ms < 0.0) return Fail("--cancel-after-ms must be >= 0");

  if (input.empty() || columns.empty() || rule_text.empty()) {
    return Fail(
        "required: --input=<csv> --columns=<spec> --rule=<rule DSL>; see "
        "the header comment of tools/adalsh_cli.cc");
  }

  // --- Load. ---
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs(columns);
  if (!specs.ok()) return Fail(specs.status().ToString());
  std::ifstream file(input);
  if (!file) return Fail("cannot open " + input);
  StatusOr<Dataset> loaded =
      LoadCsvDataset(&file, *specs, header, input);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const Dataset& dataset = *loaded;
  std::cerr << "loaded " << dataset.num_records() << " records from "
            << input << "\n";

  // --- Rule. ---
  StatusOr<MatchRule> rule = ParseRule(rule_text);
  if (!rule.ok()) return Fail(rule.status().ToString());
  Status valid = rule->Validate(dataset.record(0));
  if (!valid.ok()) return Fail("rule does not fit the schema: " +
                               valid.ToString());

  // --- Observability sinks (only when an export was requested). ---
  const bool instrumented = !trace_path.empty() || !stats_json_path.empty();
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<TraceRecorder> trace;
  std::optional<ScopedParallelForTrace> parallel_trace;
  Instrumentation instr;
  if (instrumented) {
    metrics = std::make_unique<MetricsRegistry>();
    instr.metrics = metrics.get();
    if (!trace_path.empty()) {
      trace = std::make_unique<TraceRecorder>();
      instr.trace = trace.get();
      parallel_trace.emplace(trace.get());  // per-worker ParallelFor lanes
    }
  }

  // --- Anytime-execution controller. ---
  // An external controller is needed only for --cancel-after-ms (so a helper
  // thread can Cancel() it); plain budgets ride inside the method config.
  // The method re-arms the controller at Run() entry, so the deadline clock
  // excludes loading and calibration — but the canceller thread starts here,
  // since cancellation models an outside caller's wall clock.
  std::optional<RunController> controller;
  std::thread canceller;
  std::mutex cancel_mu;
  std::condition_variable cancel_cv;
  bool run_done = false;
  if (cancel_after_ms > 0.0) {
    controller.emplace(budget);
    canceller = std::thread([&] {
      std::unique_lock<std::mutex> lock(cancel_mu);
      const auto wait = std::chrono::duration<double, std::milli>(
          cancel_after_ms);
      if (!cancel_cv.wait_for(lock, wait, [&] { return run_done; })) {
        controller->Cancel();
      }
    });
  }
  RunController* external = controller.has_value() ? &*controller : nullptr;

  // --- Filter. ---
  FilterOutput result;
  if (method == "adalsh" && shards > 0) {
    // Sharded batch execution (docs/sharding.md). The merge pass always
    // runs to completion, so cooperative cancellation of the whole run is
    // not available here; budgets still bound each per-shard pass.
    if (cancel_after_ms > 0.0) {
      return Fail("--cancel-after-ms is not supported with --shards");
    }
    ShardedEngine::Options engine_options;
    engine_options.shards = shards;
    engine_options.engine.top_k = bk;
    engine_options.engine.config.seed = seed;
    engine_options.engine.config.threads = threads;
    engine_options.engine.config.budget = budget;
    engine_options.engine.config.instrumentation = instr;
    if (!cost_model.empty()) {
      engine_options.engine.cost_model = CostModel(cost_model[0],
                                                   cost_model[1]);
    }
    StatusOr<EngineSnapshot> snap =
        RunShardedBatch(dataset, *rule, engine_options);
    if (!snap.ok()) return Fail(snap.status().ToString());
    result.stats = snap->stats;
    // RunShardedBatch assigns external ids equal to record indices, so the
    // snapshot's members cast straight back to RecordIds.
    result.clusters.clusters.reserve(snap->clusters.size());
    for (const std::vector<ExternalId>& cluster : snap->clusters) {
      std::vector<RecordId> members;
      members.reserve(cluster.size());
      for (ExternalId id : cluster) {
        members.push_back(static_cast<RecordId>(id));
      }
      result.clusters.clusters.push_back(std::move(members));
    }
  } else if (method == "adalsh") {
    AdaptiveLshConfig config;
    config.seed = seed;
    config.instrumentation = instr;
    config.budget = budget;
    config.controller = external;
    Status config_valid = config.Validate();
    if (!config_valid.ok()) return Fail(config_valid.ToString());
    AdaptiveLsh adalsh(dataset, *rule, config);
    if (!cost_model.empty()) {
      adalsh.set_cost_model(CostModel(cost_model[0], cost_model[1]));
    }
    result = adalsh.Run(bk);
  } else if (method == "lsh") {
    LshBlockingConfig config;
    config.num_hashes = lsh_x;
    config.seed = seed;
    config.instrumentation = instr;
    config.budget = budget;
    config.controller = external;
    Status config_valid = config.Validate();
    if (!config_valid.ok()) return Fail(config_valid.ToString());
    LshBlocking blocking(dataset, *rule, config);
    result = blocking.Run(bk);
  } else if (method == "pairs") {
    PairsBaseline pairs(dataset, *rule, /*threads=*/1, instr, budget,
                        external);
    result = pairs.Run(bk);
  } else {
    return Fail("unknown --method '" + method + "'");
  }
  if (canceller.joinable()) {
    {
      std::lock_guard<std::mutex> lock(cancel_mu);
      run_done = true;
    }
    cancel_cv.notify_all();
    canceller.join();
  }

  // --- Observability exports. ---
  parallel_trace.reset();  // stop recording before exporting
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) return Fail("cannot write " + trace_path);
    trace_file << trace->ToChromeTraceJson();
    std::cerr << "trace: " << trace->num_spans() << " spans -> " << trace_path
              << "\n";
  }
  if (!stats_json_path.empty()) {
    RunReportOptions report_options;
    report_options.method = method;
    report_options.dataset = input;
    report_options.k = k;
    report_options.num_records = dataset.num_records();
    report_options.threads = threads;
    MetricsSnapshot snapshot = metrics->Snapshot();
    std::ofstream report_file(stats_json_path);
    if (!report_file) return Fail("cannot write " + stats_json_path);
    report_file << WriteRunReportJson(result.stats, report_options, &snapshot);
    std::cerr << "run report -> " << stats_json_path << "\n";
  }

  Clustering clusters = result.clusters;
  uint64_t recovery_sims = 0;
  if (recover) {
    RecoveryResult recovered = RunRecoveryProcess(dataset, *rule, clusters);
    recovery_sims = recovered.similarities;
    clusters = std::move(recovered.clusters);
  }

  std::cerr << "filtering: " << result.stats.filtering_seconds << "s, "
            << result.stats.hashes_computed << " hashes, "
            << result.stats.pairwise_similarities << " similarities"
            << (recover ? ", recovery sims " + std::to_string(recovery_sims)
                        : "")
            << "\n";
  if (result.stats.termination_reason != TerminationReason::kCompleted) {
    std::cerr << "terminated early ("
              << TerminationReasonName(result.stats.termination_reason)
              << "): returned best-effort partial result\n";
  }

  // --- Gold metrics if the file carried ground truth. ---
  bool has_entity_column = false;
  for (const ColumnSpec& spec : *specs) {
    has_entity_column |= spec.kind == ColumnSpec::Kind::kEntity;
  }
  if (has_entity_column) {
    GroundTruth truth = dataset.BuildGroundTruth();
    SetAccuracy gold = GoldAccuracy(clusters, truth, k);
    std::cerr << "gold (top-" << k << "): P=" << gold.precision
              << " R=" << gold.recall << " F1=" << gold.f1 << "\n";
  }

  // --- Emit clusters. ---
  std::ofstream output_file;
  std::ostream* out = &std::cout;
  if (!output_path.empty()) {
    output_file.open(output_path);
    if (!output_file) return Fail("cannot write " + output_path);
    out = &output_file;
  }
  WriteCsvRow(out, {"cluster_rank", "record_index", "label"});
  for (size_t rank = 0; rank < clusters.clusters.size(); ++rank) {
    for (RecordId r : clusters.clusters[rank]) {
      WriteCsvRow(out, {std::to_string(rank + 1), std::to_string(r),
                        dataset.record(r).label()});
    }
  }
  return 0;
}
