#!/usr/bin/env bash
# Smoke test for the SIMD dispatch contract (docs/simd.md): the pinned
# kernel level must be invisible in output. Runs adalsh_cli on a tiny
# synthetic dataset with --simd=scalar and with --simd pinned to the widest
# level this machine supports (per `adalsh_cli simd-level`), at 1 and 8
# worker threads, and diffs the emitted cluster CSVs byte-for-byte. Also
# checks that an unknown level name is rejected.
#
# Wired into ctest as `simd_parity` (mirrors tools/trace_smoke.sh).
#
# Usage: simd_parity_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
mkdir -p "$scratch"
csv="$scratch/simd_parity_records.csv"
rm -f "$csv" "$scratch"/simd_parity_clusters_*.csv

# Widest supported level — last word of the `supported` line. On a machine
# with no vector unit this degenerates to scalar-vs-scalar, which still
# exercises the pin plumbing.
widest="$("$cli" simd-level | awk '/^supported/ {print $NF}')"
echo "simd_parity: scalar vs $widest"

# Tiny synthetic dataset mixing token text and dense vectors, so both hot
# kernels (MinHash and the dot product) sit on the diffed path.
python3 - "$csv" <<'EOF'
import random, sys
random.seed(7)
vocab = [f"w{i}" for i in range(260)]
rows = []
for e in range(10):
    base_words = random.sample(vocab, 24)
    base_vec = [random.gauss(0.0, 1.0) for _ in range(32)]
    for r in range(random.randint(3, 9)):
        words = list(base_words)
        for _ in range(random.randint(0, 4)):
            words[random.randrange(len(words))] = random.choice(vocab)
        vec = [v + random.gauss(0.0, 0.05) for v in base_vec]
        rows.append((f"e{e}", " ".join(words),
                     ";".join(f"{v:.5f}" for v in vec)))
for s in range(30):
    rows.append((f"s{s}", " ".join(random.sample(vocab, 24)),
                 ";".join(f"{random.gauss(0.0, 1.0):.5f}" for _ in range(32))))
random.shuffle(rows)
open(sys.argv[1], "w").writelines(f"{e},{t},{v}\n" for e, t, v in rows)
EOF

rule="and(leaf(0;0.5), leaf(1;0.6))"
reference="$scratch/simd_parity_clusters_scalar_t1.csv"
"$cli" --input="$csv" --columns=entity,text,vector --rule="$rule" --k=5 \
       --seed=11 --cost-model=1e-8,1e-6 --threads=1 --simd=scalar --output="$reference" \
       2> /dev/null

for level in scalar "$widest"; do
  for threads in 1 8; do
    out="$scratch/simd_parity_clusters_${level}_t${threads}.csv"
    "$cli" --input="$csv" --columns=entity,text,vector --rule="$rule" \
           --k=5 --seed=11 --cost-model=1e-8,1e-6 --threads="$threads" --simd="$level" \
           --output="$out" 2> /dev/null
    if ! cmp -s "$reference" "$out"; then
      echo "FAIL: --simd=$level --threads=$threads diverged from scalar" >&2
      diff "$reference" "$out" | head -5 >&2
      exit 1
    fi
  done
done

# ADALSH_SIMD must be honored the same way as the flag.
out="$scratch/simd_parity_clusters_env.csv"
ADALSH_SIMD="$widest" \
  "$cli" --input="$csv" --columns=entity,text,vector --rule="$rule" --k=5 \
         --seed=11 --cost-model=1e-8,1e-6 --threads=1 --output="$out" 2> /dev/null
if ! cmp -s "$reference" "$out"; then
  echo "FAIL: ADALSH_SIMD=$widest diverged from scalar" >&2
  exit 1
fi

# A bad level name must fail fast, not run with a silent default.
if "$cli" --input="$csv" --columns=entity,text,vector --rule="$rule" \
          --simd=sse9 > /dev/null 2>&1; then
  echo "FAIL: --simd=sse9 was accepted" >&2
  exit 1
fi

echo "simd_parity OK: scalar == $widest at 1 and 8 threads"
