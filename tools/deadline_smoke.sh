#!/usr/bin/env bash
# Smoke test for deadline-aware anytime execution (docs/robustness.md): runs
# adalsh_cli with a deadline far below the full run's wall-clock cost on a
# Cora-like synthetic dataset, and validates that
#
#   * the CLI still exits 0 and emits a best-effort cluster CSV;
#   * stderr announces the early termination;
#   * the --stats-json report carries termination_reason != "completed",
#     a cluster_verification entry per returned cluster, and per-round
#     counters that still sum exactly to the totals (interrupted rounds
#     included);
#   * a second run with --max-pairwise trips the budget path the same way.
#
# Wired into ctest as `deadline_smoke` (mirrors tools/trace_smoke.sh).
#
# Usage: deadline_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
mkdir -p "$scratch"
csv="$scratch/deadline_smoke_records.csv"
report="$scratch/deadline_smoke_report.json"
budget_report="$scratch/deadline_smoke_budget_report.json"
clusters="$scratch/deadline_smoke_clusters.csv"
stderr_log="$scratch/deadline_smoke_stderr.txt"
rm -f "$csv" "$report" "$budget_report" "$clusters" "$stderr_log"

# Cora-like synthetic dataset, sized so the full run takes well over the
# deadline on any machine this runs on: many mid-sized entities whose rows
# share most words, so verification needs real pairwise work.
python3 - "$csv" <<'EOF'
import random, sys
random.seed(7)
vocab = [f"tok{i}" for i in range(2000)]
rows = []
for e in range(60):
    base = random.sample(vocab, 40)
    for r in range(random.randint(15, 30)):
        words = list(base)
        for _ in range(random.randint(0, 8)):
            words[random.randrange(len(words))] = random.choice(vocab)
        rows.append((f"e{e}", " ".join(words)))
for s in range(400):
    rows.append((f"s{s}", " ".join(random.sample(vocab, 40))))
random.shuffle(rows)
open(sys.argv[1], "w").writelines(f"{e},{t}\n" for e, t in rows)
EOF

check_report() {
  local file="$1" want_reason="$2"
  python3 - "$file" "$want_reason" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
want = sys.argv[2]
reason = report["termination_reason"]
assert reason == want, f"termination_reason {reason!r}, want {want!r}"
# Anytime invariants hold in the partial report too: the per-round counters
# (interrupted rounds included) sum to the totals, and every treated record
# is counted exactly once.
totals = report["totals"]
rounds = report["rounds_detail"]
assert len(rounds) == totals["rounds"], (len(rounds), totals["rounds"])
for field in ("hashes_computed", "pairwise_similarities"):
    per_round = sum(r[field] for r in rounds)
    assert per_round == totals[field], (field, per_round, totals[field])
treated = sum(report["records_last_hashed_at"]) + \
    totals["records_finished_by_pairwise"]
assert treated == report["num_records"], (treated, report["num_records"])
assert isinstance(report["cluster_verification"], list)
EOF
}

# --- Deadline run: 50ms against a multi-second workload. ---
"$cli" --input="$csv" --columns=entity,text --rule="leaf(0;0.5)" \
       --k=5 --threads=2 --deadline-ms=50 --stats-json="$report" \
       --output="$clusters" 2> "$stderr_log"

if ! grep -q "terminated early (deadline)" "$stderr_log"; then
  echo "FAIL: stderr does not announce the deadline termination" >&2
  cat "$stderr_log" >&2
  exit 1
fi
if [[ ! -s "$clusters" ]]; then
  echo "FAIL: no best-effort cluster CSV written" >&2
  exit 1
fi
check_report "$report" deadline

# --- Budget run: a pairwise allowance the calibration alone can't respect
# staying under for long. ---
"$cli" --input="$csv" --columns=entity,text --rule="leaf(0;0.5)" \
       --k=5 --threads=2 --max-pairwise=2000 --stats-json="$budget_report" \
       > /dev/null 2> "$stderr_log"

if ! grep -q "terminated early (budget_exhausted)" "$stderr_log"; then
  echo "FAIL: stderr does not announce the budget termination" >&2
  cat "$stderr_log" >&2
  exit 1
fi
check_report "$budget_report" budget_exhausted

echo "deadline_smoke OK: $report $budget_report"
