#!/usr/bin/env bash
# Smoke test for the pairwise micro-benchmark: runs the binary on a tiny
# workload and validates that the emitted JSON baseline parses and carries
# the schema downstream tooling greps for. Wired into ctest as `bench_smoke`.
#
# Usage: bench_smoke.sh <micro_pairwise binary> <output json path>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <micro_pairwise binary> <output json path>" >&2
  exit 2
fi

binary="$1"
out="$2"

rm -f "$out"
"$binary" --smoke --out="$out" > /dev/null

if [[ ! -s "$out" ]]; then
  echo "FAIL: $out missing or empty" >&2
  exit 1
fi

# Structural validation when a JSON parser is available.
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$out" > /dev/null || {
    echo "FAIL: $out is not valid JSON" >&2
    exit 1
  }
fi

# Schema keys the baseline consumers rely on.
for key in benchmark workloads kernel scalar_pairs_per_second \
           cached_pairs_per_second engine threads pairs_per_second \
           total_similarities; do
  if ! grep -q "\"$key\"" "$out"; then
    echo "FAIL: $out lacks key \"$key\"" >&2
    exit 1
  fi
done

echo "bench_smoke OK: $out"
