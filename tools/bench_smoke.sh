#!/usr/bin/env bash
# Smoke test for the JSON-emitting micro-benchmarks: runs the binary on a
# tiny workload and validates that the emitted JSON baseline parses and
# carries the schema downstream tooling greps for. Wired into ctest as
# `bench_smoke` (micro_pairwise) and `hashing_smoke` (micro_hashing).
#
# Usage: bench_smoke.sh <bench binary> <output json path> [schema keys...]
# With no explicit keys, the micro_pairwise key list is checked.
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <bench binary> <output json path> [schema keys...]" >&2
  exit 2
fi

binary="$1"
out="$2"
shift 2
keys=("$@")
if [[ ${#keys[@]} -eq 0 ]]; then
  keys=(benchmark workloads kernel scalar_pairs_per_second
        cached_pairs_per_second engine threads pairs_per_second
        total_similarities)
fi

rm -f "$out"
"$binary" --smoke --out="$out" > /dev/null

if [[ ! -s "$out" ]]; then
  echo "FAIL: $out missing or empty" >&2
  exit 1
fi

# Structural validation when a JSON parser is available.
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$out" > /dev/null || {
    echo "FAIL: $out is not valid JSON" >&2
    exit 1
  }
fi

# Schema keys the baseline consumers rely on.
for key in "${keys[@]}"; do
  if ! grep -q "\"$key\"" "$out"; then
    echo "FAIL: $out lacks key \"$key\"" >&2
    exit 1
  fi
done

echo "bench_smoke OK: $out"
