#!/usr/bin/env bash
# Smoke test for the serve-mode telemetry plane (docs/observability.md):
# runs a serve session with the periodic metrics exporter, trace recorder,
# and slow-op watchdog enabled, paced so at least two export ticks fire, and
# asserts the exports are well-formed — the JSONL snapshots carry the
# adalsh-metrics-v1 schema with monotone seq and monotone counters, the
# mutation-latency histogram's count equals exactly the number of mutations
# the session issued, the Prometheus exposition parses (every line is a
# comment or an adalsh_ sample, the +Inf bucket equals _count), and the
# Chrome trace lands on disk. The same exactness is re-checked through the
# sharded engine, where one protocol mutation fans out to per-shard
# sub-batches and must still be observed exactly once.
#
# Wired into ctest as `telemetry_smoke` (mirrors tools/engine_smoke.sh).
#
# Usage: telemetry_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
mkdir -p "$scratch"

# Paced session: 4 mutations (2 commits, 1 remove, 1 flush) with sleeps long
# enough that the 50ms exporter ticks at least twice before shutdown.
session() {
  printf '%s\n' \
    "add alpha beta gamma delta epsilon zeta eta theta" \
    "add alpha beta gamma delta epsilon zeta eta iota" \
    "commit"
  sleep 0.15
  printf '%s\n' \
    "add red orange yellow green blue indigo violet pink" \
    "commit" \
    "remove 2"
  sleep 0.15
  printf '%s\n' "flush" "metrics" "quit"
}
mutations_issued=4

check_exports() {
  local tag="$1" jsonl="$2" prom="$3"

  local lines
  lines=$(wc -l < "$jsonl")
  if (( lines < 2 )); then
    echo "FAIL($tag): expected >= 2 periodic snapshots, got $lines" >&2
    exit 1
  fi

  # Every line is a complete adalsh-metrics-v1 document with monotone seq.
  if grep -cv '^{"schema":"adalsh-metrics-v1","seq":' "$jsonl" \
      | grep -qv '^0$'; then
    echo "FAIL($tag): malformed snapshot line in $jsonl" >&2
    exit 1
  fi
  local prev_seq=0 prev_mut=0 seq mut
  while IFS= read -r line; do
    seq=$(sed -n 's/.*"seq":\([0-9]*\).*/\1/p' <<< "$line")
    if (( seq <= prev_seq )); then
      echo "FAIL($tag): seq not monotone ($prev_seq -> $seq)" >&2
      exit 1
    fi
    prev_seq=$seq
    # Counters are cumulative: serve_mutations must never decrease (absent
    # before the first mutation counts as 0).
    mut=$(sed -n 's/.*"serve_mutations":\([0-9]*\).*/\1/p' <<< "$line")
    mut=${mut:-0}
    if (( mut < prev_mut )); then
      echo "FAIL($tag): serve_mutations went backwards" >&2
      exit 1
    fi
    prev_mut=$mut
  done < "$jsonl"

  # Exactness: the final snapshot's mutation-latency histogram counts every
  # protocol mutation the session issued — no more, no fewer.
  local final hist_count
  final=$(tail -n 1 "$jsonl")
  if (( prev_mut != mutations_issued )); then
    echo "FAIL($tag): serve_mutations=$prev_mut, issued $mutations_issued" >&2
    exit 1
  fi
  hist_count=$(sed -n \
    's/.*"serve_mutation_seconds":{"count":\([0-9]*\).*/\1/p' <<< "$final")
  if [[ "$hist_count" != "$mutations_issued" ]]; then
    echo "FAIL($tag): serve_mutation_seconds count=$hist_count," \
         "issued $mutations_issued" >&2
    exit 1
  fi

  # The Prometheus exposition: only comments and adalsh_-prefixed samples,
  # a histogram family for the mutation latency, and a +Inf bucket equal to
  # the family count.
  if grep -qEv '^(# |adalsh_)' "$prom"; then
    echo "FAIL($tag): non-exposition line in $prom" >&2
    exit 1
  fi
  if ! grep -q '^# TYPE adalsh_serve_mutation_seconds histogram$' "$prom"; then
    echo "FAIL($tag): missing histogram family in $prom" >&2
    exit 1
  fi
  local inf count
  inf=$(grep -F 'adalsh_serve_mutation_seconds_bucket{le="+Inf"}' "$prom" \
        | awk '{print $2}')
  count=$(grep -E '^adalsh_serve_mutation_seconds_count ' "$prom" \
          | awk '{print $2}')
  if [[ -z "$inf" || "$inf" != "$count" ]]; then
    echo "FAIL($tag): +Inf bucket ($inf) != _count ($count) in $prom" >&2
    exit 1
  fi
}

for shards in 0 2; do
  tag="shards=$shards"
  jsonl="$scratch/metrics_s$shards.jsonl"
  prom="$jsonl.prom"
  trace="$scratch/trace_s$shards.json"
  stderr="$scratch/serve_s$shards.err"
  rm -f "$jsonl" "$prom" "$trace"

  session | "$cli" serve --columns=text "--rule=leaf(0;0.5)" --k=3 \
    --threads=2 --seed=3 --cost-model=1e-8,1e-6 --shards="$shards" \
    --metrics-out="$jsonl" --metrics-interval-ms=50 \
    --trace-out="$trace" --trace-max-spans=10000 \
    --watchdog-factor=50 > "$scratch/transcript_s$shards.txt" 2> "$stderr"

  # The `metrics` command answered inline with the same schema.
  if ! grep -q '"schema":"adalsh-metrics-v1"' \
      "$scratch/transcript_s$shards.txt"; then
    echo "FAIL($tag): metrics command reply missing from transcript" >&2
    exit 1
  fi
  check_exports "$tag" "$jsonl" "$prom"

  if [[ ! -s "$trace" ]] || ! grep -q '"traceEvents"' "$trace"; then
    echo "FAIL($tag): trace file missing or malformed: $trace" >&2
    exit 1
  fi
  if ! grep -q '^trace: ' "$stderr"; then
    echo "FAIL($tag): trace summary line missing from stderr" >&2
    exit 1
  fi
done

echo "telemetry_smoke OK: $scratch"
