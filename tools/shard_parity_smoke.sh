#!/usr/bin/env bash
# Smoke test for the sharded execution contract (docs/sharding.md): the
# shard count must be invisible in output. Runs adalsh_cli --method=adalsh
# through the sharded executor at S in {1,4} x threads in {1,8} with the
# cost model pinned, and byte-diffs the emitted cluster CSVs against the
# S=1/threads=1 reference. Also checks that --shards rejects non-adalsh
# methods and negative counts.
#
# Wired into ctest as `shard_parity` (mirrors tools/simd_parity_smoke.sh).
#
# Usage: shard_parity_smoke.sh <adalsh_cli binary> <scratch dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <adalsh_cli binary> <scratch dir>" >&2
  exit 2
fi

cli="$1"
scratch="$2"
mkdir -p "$scratch"
csv="$scratch/shard_parity_records.csv"
rm -f "$csv" "$scratch"/shard_parity_clusters_*.csv

# Same synthetic shape as the SIMD parity smoke: planted entities plus
# singleton noise, mixing token text and dense vectors. A different RNG seed
# keeps the two smokes from sharing exact inputs.
python3 - "$csv" <<'EOF'
import random, sys
random.seed(13)
vocab = [f"w{i}" for i in range(260)]
rows = []
for e in range(10):
    base_words = random.sample(vocab, 24)
    base_vec = [random.gauss(0.0, 1.0) for _ in range(32)]
    for r in range(random.randint(3, 9)):
        words = list(base_words)
        for _ in range(random.randint(0, 4)):
            words[random.randrange(len(words))] = random.choice(vocab)
        vec = [v + random.gauss(0.0, 0.05) for v in base_vec]
        rows.append((f"e{e}", " ".join(words),
                     ";".join(f"{v:.5f}" for v in vec)))
for s in range(30):
    rows.append((f"s{s}", " ".join(random.sample(vocab, 24)),
                 ";".join(f"{random.gauss(0.0, 1.0):.5f}" for _ in range(32))))
random.shuffle(rows)
open(sys.argv[1], "w").writelines(f"{e},{t},{v}\n" for e, t, v in rows)
EOF

rule="and(leaf(0;0.5), leaf(1;0.6))"
common=(--input="$csv" --columns=entity,text,vector --rule="$rule" --k=5
        --seed=11 --cost-model=1e-8,1e-6)

reference="$scratch/shard_parity_clusters_s1_t1.csv"
"$cli" "${common[@]}" --shards=1 --threads=1 --output="$reference" \
       2> /dev/null

for shards in 1 4; do
  for threads in 1 8; do
    out="$scratch/shard_parity_clusters_s${shards}_t${threads}.csv"
    "$cli" "${common[@]}" --shards="$shards" --threads="$threads" \
           --output="$out" 2> /dev/null
    if ! cmp -s "$reference" "$out"; then
      echo "FAIL: --shards=$shards --threads=$threads diverged" >&2
      diff "$reference" "$out" | head -5 >&2
      exit 1
    fi
  done
done

# --shards is the sharded adalsh executor; other methods must reject it.
if "$cli" "${common[@]}" --method=lsh --shards=2 > /dev/null 2>&1; then
  echo "FAIL: --method=lsh --shards=2 was accepted" >&2
  exit 1
fi
if "$cli" "${common[@]}" --shards=-1 > /dev/null 2>&1; then
  echo "FAIL: --shards=-1 was accepted" >&2
  exit 1
fi

echo "shard_parity OK: S=1 == S=4 at 1 and 8 threads"
