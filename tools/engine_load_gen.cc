// In-process load generator for the resident engine (docs/engine.md):
// replays a randomized mutation history — batched ingests with interleaved
// removes and updates over a Cora-like workload — against a ResidentEngine
// while reader threads concurrently hammer TopK/Cluster against the
// published snapshots, then reports throughput and latency percentiles as a
// JSON document (schema adalsh-engine-loadgen-v1).
//
// Readers double as a consistency probe: every observation asserts the
// snapshot generation is monotone and that cluster sizes are descending, so
// a torn snapshot fails the run instead of skewing the numbers.
//
// Flags:
//   --records=N     dataset size to stream in (default 800)
//   --entities=N    ground-truth entities in the workload (default 120)
//   --batch=N       max records per ingest batch (default 32)
//   --readers=N     concurrent query threads (default 2)
//   --threads=N     engine worker threads, 0 = hardware (default 0)
//   --k=N           maintained top-k (default 10)
//   --seed=N        workload + history seed (default 1)
//   --out=PATH      write the JSON document here (default: stdout)
//   --smoke         tiny workload; schema validation, not measurement

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/cora_like.h"
#include "engine/resident_engine.h"
#include "obs/json_writer.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {
namespace {

struct LatencyStats {
  size_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double max_us = 0;
};

LatencyStats Summarize(std::vector<double>* micros) {
  LatencyStats stats;
  stats.count = micros->size();
  if (micros->empty()) return stats;
  std::sort(micros->begin(), micros->end());
  stats.p50_us = (*micros)[micros->size() / 2];
  stats.p95_us = (*micros)[micros->size() * 95 / 100];
  stats.max_us = micros->back();
  return stats;
}

void WriteLatency(JsonWriter* json, const std::string& name,
                  const LatencyStats& stats) {
  json->Key(name)
      .BeginObject()
      .Key("count")
      .Uint(stats.count)
      .Key("p50_us")
      .Double(stats.p50_us)
      .Key("p95_us")
      .Double(stats.p95_us)
      .Key("max_us")
      .Double(stats.max_us)
      .EndObject();
}

struct ReaderResult {
  std::vector<double> topk_us;
  std::vector<double> cluster_us;
  uint64_t observations = 0;
};

// Queries the engine until `stop`, checking each snapshot for the invariants
// the engine promises (docs/engine.md): monotone generation, descending
// cluster sizes, cluster_of consistent with TopK.
ReaderResult RunReader(const ResidentEngine& engine, int k,
                       const std::atomic<bool>& stop) {
  ReaderResult result;
  uint64_t last_generation = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    Timer timer;
    std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
    StatusOr<std::vector<std::vector<ExternalId>>> top = engine.TopK(k);
    result.topk_us.push_back(timer.ElapsedSeconds() * 1e6);
    ADALSH_CHECK(top.ok()) << top.status().message();
    ADALSH_CHECK(snap->generation >= last_generation) <<
                 "snapshot generation went backwards";
    last_generation = snap->generation;
    for (size_t i = 1; i < snap->clusters.size(); ++i) {
      ADALSH_CHECK(snap->clusters[i - 1].size() >= snap->clusters[i].size()) <<
                   "snapshot cluster sizes are not descending";
    }
    if (!snap->clusters.empty()) {
      const ExternalId probe = snap->clusters[0][0];
      timer.Reset();
      StatusOr<std::vector<ExternalId>> cluster = engine.Cluster(probe);
      result.cluster_us.push_back(timer.ElapsedSeconds() * 1e6);
      // The engine may have published a newer snapshot between the two
      // calls, so the probe can legitimately have vanished; a *served*
      // answer must be a well-formed cluster.
      if (cluster.ok()) {
        ADALSH_CHECK(!cluster.value().empty()) << "empty cluster served";
      }
    }
    ++result.observations;
  }
  return result;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool smoke = flags.GetBool("smoke", false);
  const size_t records =
      static_cast<size_t>(flags.GetInt("records", smoke ? 60 : 800));
  const size_t entities =
      static_cast<size_t>(flags.GetInt("entities", smoke ? 12 : 120));
  const size_t max_batch =
      static_cast<size_t>(flags.GetInt("batch", smoke ? 8 : 32));
  const int readers = static_cast<int>(flags.GetInt("readers", 2));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  const int top_k = static_cast<int>(flags.GetInt("k", 10));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const std::string out = flags.GetString("out", "");
  flags.CheckNoUnusedFlags();
  ADALSH_CHECK(records > 0 && max_batch > 0 && readers >= 0) <<
               "need --records > 0, --batch > 0, --readers >= 0";

  CoraLikeConfig data_config;
  data_config.num_records = records;
  data_config.num_entities = entities;
  data_config.seed = DeriveSeed(seed, 0xda7a);
  GeneratedDataset workload = GenerateCoraLike(data_config);

  ResidentEngine::Options options;
  options.config.seed = 3;
  options.config.threads = threads;
  options.config.sequence.max_budget = 640;
  options.top_k = top_k;
  // Pinned unit costs: load-gen runs must be comparable run-over-run, so the
  // jump-to-P point cannot depend on wall-clock calibration noise.
  options.cost_model = CostModel(1e-8, 1e-6);
  ResidentEngine engine(workload.rule, options);

  std::atomic<bool> stop(false);
  std::vector<ReaderResult> reader_results(static_cast<size_t>(readers));
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(reader_results.size());
  for (ReaderResult& slot : reader_results) {
    reader_threads.emplace_back(
        [&engine, top_k, &stop, &slot] { slot = RunReader(engine, top_k, stop); });
  }

  // The mutation history: shuffled ingest order, randomized batch sizes,
  // occasional removes/updates — the same shape the differential tests
  // replay, but timed.
  Rng rng(DeriveSeed(seed, 0x10ad));
  std::vector<size_t> order(workload.dataset.num_records());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  std::vector<ExternalId> live;
  std::vector<double> ingest_us;
  std::vector<double> remove_us;
  std::vector<double> update_us;
  Timer wall;
  size_t cursor = 0;
  uint64_t interrupted = 0;
  while (cursor < order.size()) {
    const size_t take =
        1 + rng.NextBelow(std::min(order.size() - cursor, max_batch));
    std::vector<Record> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(workload.dataset.record(order[cursor + i]));
    }
    cursor += take;
    Timer timer;
    StatusOr<EngineMutationResult> ingested = engine.Ingest(std::move(batch));
    ingest_us.push_back(timer.ElapsedSeconds() * 1e6);
    ADALSH_CHECK(ingested.ok()) << ingested.status().message();
    interrupted +=
        ingested.value().refinement != TerminationReason::kCompleted;
    live.insert(live.end(), ingested.value().assigned_ids.begin(),
                ingested.value().assigned_ids.end());

    if (live.size() > 2 && rng.NextBelow(4) == 0) {
      const size_t victim = rng.NextBelow(live.size());
      const ExternalId id = live[victim];
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      timer.Reset();
      StatusOr<EngineMutationResult> removed =
          engine.Remove(std::vector<ExternalId>{id});
      remove_us.push_back(timer.ElapsedSeconds() * 1e6);
      ADALSH_CHECK(removed.ok()) << removed.status().message();
    }
    if (!live.empty() && rng.NextBelow(4) == 0) {
      const ExternalId id = live[rng.NextBelow(live.size())];
      Record contents =
          workload.dataset.record(rng.NextBelow(workload.dataset.num_records()));
      timer.Reset();
      StatusOr<EngineMutationResult> updated =
          engine.Update(id, std::move(contents));
      update_us.push_back(timer.ElapsedSeconds() * 1e6);
      ADALSH_CHECK(updated.ok()) << updated.status().message();
    }
  }
  StatusOr<EngineMutationResult> flushed = engine.Flush();
  ADALSH_CHECK(flushed.ok()) << flushed.status().message();
  const double wall_seconds = wall.ElapsedSeconds();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : reader_threads) t.join();

  std::vector<double> topk_us;
  std::vector<double> cluster_us;
  uint64_t observations = 0;
  for (ReaderResult& r : reader_results) {
    topk_us.insert(topk_us.end(), r.topk_us.begin(), r.topk_us.end());
    cluster_us.insert(cluster_us.end(), r.cluster_us.begin(),
                      r.cluster_us.end());
    observations += r.observations;
  }

  const EngineCounters counters = engine.counters();
  JsonWriter json;
  json.BeginObject()
      .Key("schema")
      .String("adalsh-engine-loadgen-v1")
      .Key("config")
      .BeginObject()
      .Key("records")
      .Uint(records)
      .Key("entities")
      .Uint(entities)
      .Key("max_batch")
      .Uint(max_batch)
      .Key("readers")
      .Int(readers)
      .Key("threads")
      .Int(threads)
      .Key("k")
      .Int(top_k)
      .Key("seed")
      .Uint(seed)
      .Key("smoke")
      .Bool(smoke)
      .EndObject()
      .Key("mutations")
      .BeginObject()
      .Key("wall_seconds")
      .Double(wall_seconds)
      .Key("records_per_second")
      .Double(wall_seconds > 0 ? static_cast<double>(counters.ingested) /
                                     wall_seconds
                               : 0.0)
      .Key("interrupted_refinements")
      .Uint(interrupted);
  WriteLatency(&json, "ingest", Summarize(&ingest_us));
  WriteLatency(&json, "remove", Summarize(&remove_us));
  WriteLatency(&json, "update", Summarize(&update_us));
  json.EndObject().Key("queries").BeginObject().Key("observations").Uint(
      observations);
  WriteLatency(&json, "topk", Summarize(&topk_us));
  WriteLatency(&json, "cluster", Summarize(&cluster_us));
  json.EndObject()
      .Key("final")
      .BeginObject()
      .Key("generation")
      .Uint(counters.generation)
      .Key("live_records")
      .Uint(counters.live_records)
      .Key("clusters")
      .Uint(engine.Snapshot()->clusters.size())
      .Key("total_hashes")
      .Uint(counters.total_hashes)
      .Key("total_similarities")
      .Uint(counters.total_similarities)
      .EndObject()
      .EndObject();

  const std::string doc = json.TakeString();
  if (out.empty()) {
    std::cout << doc << "\n";
  } else {
    std::ofstream file(out);
    ADALSH_CHECK(file.good()) << "cannot open --out file " + out;
    file << doc << "\n";
    std::cerr << "engine_load_gen: wrote " << out << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace adalsh

int main(int argc, char** argv) { return adalsh::Run(argc, argv); }
