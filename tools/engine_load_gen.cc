// In-process load generator for the resident engine (docs/engine.md) and its
// sharded counterpart (docs/sharding.md): replays a randomized mutation
// history — batched ingests with interleaved removes and updates over a
// Cora-like workload, split across one or more writer threads — while reader
// threads concurrently hammer TopK/Cluster against the published snapshots,
// then reports throughput and latency percentiles as a JSON document (schema
// adalsh-engine-loadgen-v1).
//
// Readers double as a consistency probe: every observation asserts the
// snapshot generation is monotone and that cluster sizes are descending, so
// a torn snapshot fails the run instead of skewing the numbers.
//
// Every mutation's time spent waiting for the engine lock (summed across
// shard locks in the sharded engine) feeds the lock_wait histogram — the
// before/after signal for the sharded engine's multi-writer claim: with
// --writers=4 the resident engine's single lock shows the queueing that
// --shards=4 removes.
//
// Flags:
//   --records=N     dataset size to stream in (default 800)
//   --entities=N    ground-truth entities in the workload (default 120)
//   --batch=N       max records per ingest batch (default 32)
//   --readers=N     concurrent query threads (default 2)
//   --writers=N     concurrent mutation threads (default 1)
//   --shards=N      0 = ResidentEngine; >=1 = ShardedEngine with N shards
//   --threads=N     engine worker threads, 0 = hardware (default 0)
//   --k=N           maintained top-k (default 10)
//   --seed=N        workload + history seed (default 1)
//   --out=PATH      write the JSON document here (default: stdout)
//   --smoke         tiny workload; schema validation, not measurement
//   --data-dir=DIR  run the load through the durable engine with its WAL and
//                   checkpoints in DIR (docs/durability.md) — the A/B for
//                   what the durability plane costs under load. Durable
//                   mutations serialize on one lock, so combine with
//                   --writers to see the contention price too.
//   --sync=POLICY   WAL fsync policy with --data-dir: none|batch|always
//                   (default batch)

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "datagen/cora_like.h"
#include "engine/durability.h"
#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "obs/histogram.h"
#include "obs/json_writer.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {
namespace {

struct LatencyStats {
  size_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double p99_9 = 0;
  double max = 0;
};

LatencyStats Summarize(std::vector<double>* values) {
  LatencyStats stats;
  stats.count = values->size();
  if (values->empty()) return stats;
  std::sort(values->begin(), values->end());
  stats.p50 = (*values)[values->size() / 2];
  stats.p95 = (*values)[values->size() * 95 / 100];
  stats.p99 = (*values)[values->size() * 99 / 100];
  stats.p99_9 = (*values)[values->size() * 999 / 1000];
  stats.max = values->back();
  return stats;
}

void WriteLatency(JsonWriter* json, const std::string& name,
                  const LatencyStats& stats, const std::string& unit = "us") {
  json->Key(name)
      .BeginObject()
      .Key("count")
      .Uint(stats.count)
      .Key("p50_" + unit)
      .Double(stats.p50)
      .Key("p95_" + unit)
      .Double(stats.p95)
      .Key("p99_" + unit)
      .Double(stats.p99)
      .Key("p99_9_" + unit)
      .Double(stats.p99_9)
      .Key("max_" + unit)
      .Double(stats.max)
      .EndObject();
}

/// Same JSON shape as WriteLatency but fed from an exact obs histogram
/// (seconds), scaled into the named unit. Percentiles are bucket-exact, so
/// the lock_wait summary matches what a registry snapshot would report for
/// the identical samples.
void WriteHistogramLatency(JsonWriter* json, const std::string& name,
                           const LatencyHistogram& histogram, double scale,
                           const std::string& unit) {
  json->Key(name)
      .BeginObject()
      .Key("count")
      .Uint(histogram.count())
      .Key("p50_" + unit)
      .Double(histogram.Percentile(50) * scale)
      .Key("p95_" + unit)
      .Double(histogram.Percentile(95) * scale)
      .Key("p99_" + unit)
      .Double(histogram.Percentile(99) * scale)
      .Key("p99_9_" + unit)
      .Double(histogram.Percentile(99.9) * scale)
      .Key("max_" + unit)
      .Double(histogram.max() * scale)
      .EndObject();
}

struct ReaderResult {
  std::vector<double> topk_us;
  std::vector<double> cluster_us;
  uint64_t observations = 0;
};

// Queries the engine until `stop`, checking each snapshot for the invariants
// both engines promise (docs/engine.md, docs/sharding.md): monotone
// generation, descending cluster sizes, cluster_of consistent with TopK.
template <typename Engine>
ReaderResult RunReader(const Engine& engine, int k,
                       const std::atomic<bool>& stop) {
  ReaderResult result;
  uint64_t last_generation = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    Timer timer;
    std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
    StatusOr<std::vector<std::vector<ExternalId>>> top = engine.TopK(k);
    result.topk_us.push_back(timer.ElapsedSeconds() * 1e6);
    ADALSH_CHECK(top.ok()) << top.status().message();
    ADALSH_CHECK(snap->generation >= last_generation) <<
                 "snapshot generation went backwards";
    last_generation = snap->generation;
    for (size_t i = 1; i < snap->clusters.size(); ++i) {
      ADALSH_CHECK(snap->clusters[i - 1].size() >= snap->clusters[i].size()) <<
                   "snapshot cluster sizes are not descending";
    }
    if (!snap->clusters.empty()) {
      const ExternalId probe = snap->clusters[0][0];
      timer.Reset();
      StatusOr<std::vector<ExternalId>> cluster = engine.Cluster(probe);
      result.cluster_us.push_back(timer.ElapsedSeconds() * 1e6);
      // The engine may have published a newer snapshot between the two
      // calls, so the probe can legitimately have vanished; a *served*
      // answer must be a well-formed cluster.
      if (cluster.ok()) {
        ADALSH_CHECK(!cluster.value().empty()) << "empty cluster served";
      }
    }
    ++result.observations;
  }
  return result;
}

struct WriterResult {
  std::vector<double> ingest_us;
  std::vector<double> remove_us;
  std::vector<double> update_us;
  LatencyHistogram lock_wait;  // seconds; one entry per mutation call
  uint64_t interrupted = 0;
};

// One writer's slice of the mutation history: shuffled ingest order,
// randomized batch sizes, occasional removes/updates of its *own* ids (so
// concurrent writers never race on the same external id) — the same shape
// the differential tests replay, but timed.
template <typename Engine>
WriterResult RunWriter(Engine* engine, const GeneratedDataset& workload,
                       const std::vector<size_t>& order, size_t max_batch,
                       uint64_t seed, int writer_index) {
  WriterResult result;
  Rng rng(DeriveSeed(seed, 0x10ad + static_cast<uint64_t>(writer_index)));
  std::vector<ExternalId> live;
  size_t cursor = 0;
  while (cursor < order.size()) {
    const size_t take =
        1 + rng.NextBelow(std::min(order.size() - cursor, max_batch));
    std::vector<Record> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(workload.dataset.record(order[cursor + i]));
    }
    cursor += take;
    Timer timer;
    StatusOr<EngineMutationResult> ingested = engine->Ingest(std::move(batch));
    result.ingest_us.push_back(timer.ElapsedSeconds() * 1e6);
    ADALSH_CHECK(ingested.ok()) << ingested.status().message();
    result.lock_wait.Add(ingested.value().lock_wait_seconds);
    result.interrupted +=
        ingested.value().refinement != TerminationReason::kCompleted;
    live.insert(live.end(), ingested.value().assigned_ids.begin(),
                ingested.value().assigned_ids.end());

    if (live.size() > 2 && rng.NextBelow(4) == 0) {
      const size_t victim = rng.NextBelow(live.size());
      const ExternalId id = live[victim];
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      timer.Reset();
      StatusOr<EngineMutationResult> removed =
          engine->Remove(std::vector<ExternalId>{id});
      result.remove_us.push_back(timer.ElapsedSeconds() * 1e6);
      ADALSH_CHECK(removed.ok()) << removed.status().message();
      result.lock_wait.Add(removed.value().lock_wait_seconds);
    }
    if (!live.empty() && rng.NextBelow(4) == 0) {
      const ExternalId id = live[rng.NextBelow(live.size())];
      Record contents =
          workload.dataset.record(rng.NextBelow(workload.dataset.num_records()));
      timer.Reset();
      StatusOr<EngineMutationResult> updated =
          engine->Update(id, std::move(contents));
      result.update_us.push_back(timer.ElapsedSeconds() * 1e6);
      ADALSH_CHECK(updated.ok()) << updated.status().message();
      result.lock_wait.Add(updated.value().lock_wait_seconds);
    }
  }
  return result;
}

struct DriveConfig {
  size_t records;
  size_t entities;
  size_t max_batch;
  int readers;
  int writers;
  int shards;  // 0 = resident engine
  int threads;
  int top_k;
  uint64_t seed;
  bool smoke;
  std::string out;
  std::string data_dir;  // empty = no durability plane
  std::string sync;
};

// Runs the full load: reader threads polling, writer threads replaying
// disjoint strided slices of the shuffled history, one final Flush, then the
// JSON report. Works identically over ResidentEngine and ShardedEngine.
template <typename Engine>
int Drive(Engine* engine, const GeneratedDataset& workload,
          const DriveConfig& cfg) {
  std::atomic<bool> stop(false);
  std::vector<ReaderResult> reader_results(static_cast<size_t>(cfg.readers));
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(reader_results.size());
  for (ReaderResult& slot : reader_results) {
    reader_threads.emplace_back([engine, &cfg, &stop, &slot] {
      slot = RunReader(*engine, cfg.top_k, stop);
    });
  }

  Rng rng(DeriveSeed(cfg.seed, 0x0bde));
  std::vector<size_t> order(workload.dataset.num_records());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  // Writer w replays the strided slice order[w], order[w + W], ...
  std::vector<std::vector<size_t>> slices(static_cast<size_t>(cfg.writers));
  for (size_t i = 0; i < order.size(); ++i) {
    slices[i % slices.size()].push_back(order[i]);
  }

  std::vector<WriterResult> writer_results(static_cast<size_t>(cfg.writers));
  std::vector<std::thread> writer_threads;
  writer_threads.reserve(writer_results.size());
  Timer wall;
  for (int w = 0; w < cfg.writers; ++w) {
    writer_threads.emplace_back([engine, &workload, &slices, &cfg,
                                 &writer_results, w] {
      writer_results[static_cast<size_t>(w)] =
          RunWriter(engine, workload, slices[static_cast<size_t>(w)],
                    cfg.max_batch, cfg.seed, w);
    });
  }
  for (std::thread& t : writer_threads) t.join();
  StatusOr<EngineMutationResult> flushed = engine->Flush();
  ADALSH_CHECK(flushed.ok()) << flushed.status().message();
  const double wall_seconds = wall.ElapsedSeconds();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : reader_threads) t.join();

  std::vector<double> topk_us;
  std::vector<double> cluster_us;
  uint64_t observations = 0;
  for (ReaderResult& r : reader_results) {
    topk_us.insert(topk_us.end(), r.topk_us.begin(), r.topk_us.end());
    cluster_us.insert(cluster_us.end(), r.cluster_us.begin(),
                      r.cluster_us.end());
    observations += r.observations;
  }
  std::vector<double> ingest_us;
  std::vector<double> remove_us;
  std::vector<double> update_us;
  // Exact cross-writer aggregation: the merged histogram is identical to
  // one built from all samples on a single thread (docs/observability.md).
  LatencyHistogram lock_wait;
  uint64_t interrupted = 0;
  for (WriterResult& r : writer_results) {
    ingest_us.insert(ingest_us.end(), r.ingest_us.begin(), r.ingest_us.end());
    remove_us.insert(remove_us.end(), r.remove_us.begin(), r.remove_us.end());
    update_us.insert(update_us.end(), r.update_us.begin(), r.update_us.end());
    lock_wait.Merge(r.lock_wait);
    interrupted += r.interrupted;
  }
  lock_wait.Add(flushed.value().lock_wait_seconds);

  const EngineCounters counters = engine->counters();
  JsonWriter json;
  json.BeginObject()
      .Key("schema")
      .String("adalsh-engine-loadgen-v1")
      .Key("config")
      .BeginObject()
      .Key("records")
      .Uint(cfg.records)
      .Key("entities")
      .Uint(cfg.entities)
      .Key("max_batch")
      .Uint(cfg.max_batch)
      .Key("readers")
      .Int(cfg.readers)
      .Key("writers")
      .Int(cfg.writers)
      .Key("shards")
      .Int(cfg.shards)
      .Key("threads")
      .Int(cfg.threads)
      .Key("k")
      .Int(cfg.top_k)
      .Key("seed")
      .Uint(cfg.seed)
      .Key("smoke")
      .Bool(cfg.smoke)
      .Key("data_dir")
      .String(cfg.data_dir)
      .Key("sync")
      .String(cfg.data_dir.empty() ? "" : cfg.sync)
      .EndObject()
      .Key("mutations")
      .BeginObject()
      .Key("wall_seconds")
      .Double(wall_seconds)
      .Key("records_per_second")
      .Double(wall_seconds > 0 ? static_cast<double>(counters.ingested) /
                                     wall_seconds
                               : 0.0)
      .Key("interrupted_refinements")
      .Uint(interrupted);
  WriteLatency(&json, "ingest", Summarize(&ingest_us));
  WriteLatency(&json, "remove", Summarize(&remove_us));
  WriteLatency(&json, "update", Summarize(&update_us));
  // Time each mutation spent queueing for the engine lock (summed across
  // shard locks when sharded) — the contention the sharded engine exists to
  // relieve.
  WriteHistogramLatency(&json, "lock_wait", lock_wait, /*scale=*/1e3, "ms");
  json.EndObject().Key("queries").BeginObject().Key("observations").Uint(
      observations);
  WriteLatency(&json, "topk", Summarize(&topk_us));
  WriteLatency(&json, "cluster", Summarize(&cluster_us));
  json.EndObject()
      .Key("final")
      .BeginObject()
      .Key("generation")
      .Uint(counters.generation)
      .Key("live_records")
      .Uint(counters.live_records)
      .Key("clusters")
      .Uint(engine->Snapshot()->clusters.size())
      .Key("total_hashes")
      .Uint(counters.total_hashes)
      .Key("total_similarities")
      .Uint(counters.total_similarities)
      .EndObject();

  // Durability accounting (durable engine only): what the WAL cost under
  // this load — frames/bytes appended, fsyncs, retries, checkpoints.
  if constexpr (std::is_same_v<Engine, DurableEngine>) {
    const DurabilityStats wal = engine->durability_stats();
    json.Key("durability")
        .BeginObject()
        .Key("wal_frames_appended")
        .Uint(wal.wal_frames_appended)
        .Key("wal_bytes_appended")
        .Uint(wal.wal_bytes_appended)
        .Key("wal_syncs")
        .Uint(wal.wal_syncs)
        .Key("wal_append_retries")
        .Uint(wal.wal_append_retries)
        .Key("wal_sync_retries")
        .Uint(wal.wal_sync_retries)
        .Key("checkpoints_written")
        .Uint(wal.checkpoints_written)
        .Key("wal_degraded")
        .Bool(wal.wal_degraded)
        .EndObject();
  }
  json.EndObject();

  const std::string doc = json.TakeString();
  if (cfg.out.empty()) {
    std::cout << doc << "\n";
  } else {
    std::ofstream file(cfg.out);
    ADALSH_CHECK(file.good()) << "cannot open --out file " + cfg.out;
    file << doc << "\n";
    std::cerr << "engine_load_gen: wrote " << cfg.out << "\n";
  }
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  DriveConfig cfg;
  cfg.smoke = flags.GetBool("smoke", false);
  cfg.records =
      static_cast<size_t>(flags.GetInt("records", cfg.smoke ? 60 : 800));
  cfg.entities =
      static_cast<size_t>(flags.GetInt("entities", cfg.smoke ? 12 : 120));
  cfg.max_batch =
      static_cast<size_t>(flags.GetInt("batch", cfg.smoke ? 8 : 32));
  cfg.readers = static_cast<int>(flags.GetInt("readers", 2));
  cfg.writers = static_cast<int>(flags.GetInt("writers", 1));
  cfg.shards = static_cast<int>(flags.GetInt("shards", 0));
  cfg.threads = static_cast<int>(flags.GetInt("threads", 0));
  cfg.top_k = static_cast<int>(flags.GetInt("k", 10));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.out = flags.GetString("out", "");
  cfg.data_dir = flags.GetString("data-dir", "");
  cfg.sync = flags.GetString("sync", "batch");
  flags.CheckNoUnusedFlags();
  ADALSH_CHECK(cfg.records > 0 && cfg.max_batch > 0 && cfg.readers >= 0) <<
               "need --records > 0, --batch > 0, --readers >= 0";
  ADALSH_CHECK(cfg.writers >= 1) << "need --writers >= 1";
  ADALSH_CHECK(cfg.shards >= 0) << "need --shards >= 0";

  CoraLikeConfig data_config;
  data_config.num_records = cfg.records;
  data_config.num_entities = cfg.entities;
  data_config.seed = DeriveSeed(cfg.seed, 0xda7a);
  GeneratedDataset workload = GenerateCoraLike(data_config);

  ResidentEngine::Options options;
  options.config.seed = 3;
  options.config.threads = cfg.threads;
  options.config.sequence.max_budget = 640;
  options.top_k = cfg.top_k;
  // Pinned unit costs: load-gen runs must be comparable run-over-run, so the
  // jump-to-P point cannot depend on wall-clock calibration noise.
  options.cost_model = CostModel(1e-8, 1e-6);

  if (!cfg.data_dir.empty()) {
    StatusOr<WalSyncPolicy> sync = ParseWalSyncPolicy(cfg.sync);
    ADALSH_CHECK(sync.ok()) << sync.status().message();
    DurableEngine::Options durable_options;
    durable_options.engine = options;
    durable_options.shards = cfg.shards;
    durable_options.data_dir = cfg.data_dir;
    durable_options.sync = *sync;
    StatusOr<std::unique_ptr<DurableEngine>> engine =
        DurableEngine::Open(workload.rule, std::move(durable_options));
    ADALSH_CHECK(engine.ok()) << engine.status().message();
    return Drive(engine.value().get(), workload, cfg);
  }
  if (cfg.shards > 0) {
    ShardedEngine::Options sharded_options;
    sharded_options.engine = options;
    sharded_options.shards = cfg.shards;
    ShardedEngine engine(workload.rule, sharded_options);
    return Drive(&engine, workload, cfg);
  }
  ResidentEngine engine(workload.rule, options);
  return Drive(&engine, workload, cfg);
}

}  // namespace
}  // namespace adalsh

int main(int argc, char** argv) { return adalsh::Run(argc, argv); }
