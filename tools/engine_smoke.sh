#!/usr/bin/env bash
# Smoke test for the resident serve mode (docs/engine.md): drives
# `adalsh_cli serve` through a scripted session covering every protocol verb
# — staged adds, commits, queries, an update that moves a record between
# clusters, removals, error replies, input-hardening rejections (an oversized
# line and a line with control bytes, docs/robustness.md), and a flush — and
# diffs the transcript against tests/golden/engine_smoke.golden
# byte-for-byte. The session pins
# the cost model and seed, so the transcript is reproducible at any thread
# count; a second session checks the (wall-clock-bearing, so not
# byte-diffable) `stats` report carries the engine-report schema.
#
# Wired into ctest as `engine_smoke` (mirrors tools/trace_smoke.sh).
#
# Usage: engine_smoke.sh <adalsh_cli binary> <golden file> <scratch dir>
set -euo pipefail

if [[ $# -ne 3 ]]; then
  echo "usage: $0 <adalsh_cli binary> <golden file> <scratch dir>" >&2
  exit 2
fi

cli="$1"
golden="$2"
scratch="$3"
mkdir -p "$scratch"
transcript="$scratch/engine_smoke_transcript.txt"
rm -f "$transcript"

serve=("$cli" serve --columns=text "--rule=leaf(0;0.5)" --k=3 --threads=1
       --seed=3 --cost-model=1e-8,1e-6 --max-line-bytes=256)

# Input-hardening probes: a line past --max-line-bytes and a line carrying a
# control byte. Both must answer `err` and leave the session serving.
long_line="add $(printf 'x%.0s' $(seq 1 300))"
ctrl_line=$'add alpha\x01beta'

printf '%s\n' \
  "topk" \
  "add alpha beta gamma delta epsilon zeta eta theta" \
  "add alpha beta gamma delta epsilon zeta eta iota" \
  "add alpha beta kappa delta epsilon zeta eta theta" \
  "add red orange yellow green blue indigo violet pink" \
  "add red orange yellow green blue indigo violet black" \
  "commit" \
  "topk" \
  "cluster 1" \
  "add red orange cyan green blue indigo violet pink" \
  "add lonely solitary single unique alone only sole one" \
  "commit" \
  "topk" \
  "update 4 alpha beta gamma delta epsilon zeta kappa theta" \
  "topk" \
  "remove 0 1" \
  "topk" \
  "remove 99" \
  "bogus" \
  "$long_line" \
  "$ctrl_line" \
  "topk" \
  "flush" \
  "quit" \
  | "${serve[@]}" > "$transcript"

if ! diff -u "$golden" "$transcript"; then
  echo "FAIL: serve transcript deviates from $golden" >&2
  exit 1
fi

# The transcript above must be thread-count-independent: replay it at 8
# worker threads and expect the identical bytes.
threaded=("${serve[@]}")
threaded=("${threaded[@]/--threads=1/--threads=8}")
printf '%s\n' \
  "topk" \
  "add alpha beta gamma delta epsilon zeta eta theta" \
  "add alpha beta gamma delta epsilon zeta eta iota" \
  "add alpha beta kappa delta epsilon zeta eta theta" \
  "add red orange yellow green blue indigo violet pink" \
  "add red orange yellow green blue indigo violet black" \
  "commit" \
  "topk" \
  "cluster 1" \
  "add red orange cyan green blue indigo violet pink" \
  "add lonely solitary single unique alone only sole one" \
  "commit" \
  "topk" \
  "update 4 alpha beta gamma delta epsilon zeta kappa theta" \
  "topk" \
  "remove 0 1" \
  "topk" \
  "remove 99" \
  "bogus" \
  "$long_line" \
  "$ctrl_line" \
  "topk" \
  "flush" \
  "quit" \
  | "${threaded[@]}" > "$transcript.t8"
if ! diff -u "$golden" "$transcript.t8"; then
  echo "FAIL: serve transcript differs at --threads=8" >&2
  exit 1
fi

# `stats` embeds wall-clock seconds, so it is checked by shape, not bytes.
stats=$(printf 'add a b c\ncommit\nstats\nquit\n' | "${serve[@]}")
for key in adalsh-engine-report-v1 counters snapshot refinement; do
  if ! grep -q "\"$key\"" <<< "$stats"; then
    echo "FAIL: stats report lacks \"$key\"" >&2
    exit 1
  fi
done

echo "engine_smoke OK: $transcript"
