#!/usr/bin/env bash
# Build and run the test suite under a sanitizer.
#
#   tools/run_sanitized_tests.sh thread     # ThreadSanitizer   -> build-thread/
#   tools/run_sanitized_tests.sh address    # AddressSanitizer  -> build-address/
#   tools/run_sanitized_tests.sh undefined  # UBSanitizer       -> build-undefined/
#
# Extra arguments are forwarded to ctest, e.g. restrict to the concurrency
# suites while iterating:
#
#   tools/run_sanitized_tests.sh thread -R 'thread_pool|parallel_equivalence'
#   tools/run_sanitized_tests.sh thread -R 'metrics_registry|trace_recorder'
#
# The TSan run is the certification required by docs/threading.md for any
# change to the hash hot path (ThreadPool, HashEngine, HashCache,
# TransitiveHashFunction, CostModel::Calibrate) and by docs/observability.md
# for the obs layer (MetricsRegistry shards, TraceRecorder, the ParallelFor
# tracer hook). The UBSan run is required by docs/robustness.md for the
# anytime-execution machinery (RunController, the interrupted-sweep paths,
# FaultInjector):
#
#   tools/run_sanitized_tests.sh undefined -R 'run_controller|deadline_smoke'
#
# docs/engine.md requires the TSan run for any change to the resident engine
# (snapshot publication and the query read path run concurrently with
# mutations):
#
#   tools/run_sanitized_tests.sh thread -R 'resident_engine|engine_equivalence'
#
# docs/sharding.md requires the TSan run for any change to the sharded
# executor or the cross-shard merge (shard locks are taken in bulk at Flush
# while per-shard mutations and global queries proceed concurrently):
#
#   tools/run_sanitized_tests.sh thread -R 'shard_equivalence|shard_parity'
#
# docs/observability.md requires the TSan run for any change to the
# telemetry plane (histogram shards, the serve-mode exporter thread, the
# trace ring) — the thread run finishes with a dedicated second pass over
# the telemetry suites, which exercise 4 concurrent writers against a shared
# registry and the exporter thread racing the serve loop:
#
#   tools/run_sanitized_tests.sh thread -R 'obs_histogram|engine_telemetry'
#
# docs/durability.md requires the address and undefined runs for any change
# to the WAL, checkpoint, or recovery code (src/io/wal.cc,
# src/io/checkpoint.cc, src/engine/durability.cc) — the frame decoder and
# replay paths parse attacker-shaped bytes (torn tails, bit flips, hostile
# length fields), which is exactly ASan/UBSan territory:
#
#   tools/run_sanitized_tests.sh address -R 'wal_test|wal_recovery|crash_smoke'
#
# docs/simd.md requires the address and undefined runs for any change to the
# vector kernels (util/simd_kernels.cc) or the SoA layouts feeding them
# (FeatureCache, RandomHyperplaneFamily): after the main ctest pass (which
# runs at whatever level auto dispatch probes), the kernel suites rerun with
# the dispatch pinned to scalar and to the widest level the machine supports
# (ADALSH_SIMD=native), so out-of-bounds tail reads and misaligned vector
# loads can't hide behind the probe's choice.

set -euo pipefail

sanitizer="${1:-}"
case "${sanitizer}" in
  thread|address|undefined) shift ;;
  *)
    echo "usage: $0 <thread|address|undefined> [ctest args...]" >&2
    exit 2
    ;;
esac

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-${sanitizer}"

cmake -S "${repo_root}" -B "${build_dir}" -DADALSH_SANITIZE="${sanitizer}"
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes a single race/report fail the test immediately instead
# of scrolling past inside otherwise-green output.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

ctest --test-dir "${build_dir}" --output-on-failure "$@"

# Telemetry matrix (thread only): rerun the telemetry suites after the main
# pass. They are the races-by-construction set — per-thread histogram
# shards merged under concurrent writers, the serve exporter thread
# snapshotting mid-mutation, the capped trace ring — and a second pass gives
# a different interleaving a chance to surface under TSan.
if [[ "${sanitizer}" == "thread" ]]; then
  telemetry_suites='obs_histogram|engine_telemetry|metrics_registry|trace_recorder|telemetry_smoke'
  echo "=== telemetry suites under thread sanitizer (second pass) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -R "${telemetry_suites}"
fi

# Durability matrix (address/undefined only — the WAL is serialized under
# the durable mutation lock, so the value here is memory safety of the frame
# decoder and replay paths, not interleavings): rerun the WAL, recovery, and
# kill-point suites after the main pass.
if [[ "${sanitizer}" != "thread" ]]; then
  durability_suites='wal_test|wal_recovery|crash_smoke'
  echo "=== durability suites under ${sanitizer} (second pass) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -R "${durability_suites}"
fi

# SIMD dispatch matrix (address/undefined only — the kernels hold no shared
# state worth a TSan pass): rerun the suites that drive the vector kernels
# with dispatch pinned to scalar and to the widest supported level.
if [[ "${sanitizer}" != "thread" ]]; then
  simd_suites='simd_kernels|simd_equivalence|cosine|rule_evaluator|hash_family|hash_cache|hash_engine|simd_parity'
  for level in scalar native; do
    echo "=== ADALSH_SIMD=${level}: kernel suites under ${sanitizer} ==="
    ADALSH_SIMD="${level}" \
      ctest --test-dir "${build_dir}" --output-on-failure -R "${simd_suites}"
  done
fi
